//! A simplified HyperCuts decision-tree classifier (Singh et al.).
//!
//! The header space is recursively cut along the most discriminating field: an internal
//! node consumes the next `CUT_BITS` most-significant not-yet-consumed bits of the chosen
//! field and fans out into `2^CUT_BITS` children; rules are replicated into every child
//! whose sub-space they overlap. Recursion stops when a node holds at most `binth` rules
//! (or no further cut makes progress), leaving a small linear scan at the leaves.
//!
//! Like the other baselines, the structure is built solely from the rule set, so an
//! attacker cannot inflate lookup cost with crafted traffic — the property §7 relies on
//! when recommending HyperCuts as a TSE-resistant replacement for TSS.

use tse_packet::fields::{FieldSchema, Key};

use crate::flowtable::FlowTable;
use crate::rule::{Action, Rule};

use super::{Classification, Classifier};

/// Number of bits consumed per cut (each internal node has `2^CUT_BITS` children).
const CUT_BITS: u32 = 2;

#[derive(Debug, Clone)]
struct StoredRule {
    index: usize,
    priority: u32,
    action: Action,
    rule: Rule,
}

#[derive(Debug)]
enum Node {
    Leaf(Vec<StoredRule>),
    Internal {
        field: usize,
        /// Right-shift applied to the header field before taking `CUT_BITS` bits.
        shift: u32,
        children: Vec<Node>,
    },
}

/// The HyperCuts classifier.
#[derive(Debug)]
pub struct HyperCuts {
    root: Node,
    node_count: usize,
    stored_rules: usize,
}

/// Maximum number of rules kept in a leaf before the builder tries to cut further.
const DEFAULT_BINTH: usize = 4;

impl HyperCuts {
    /// Build with the default leaf threshold.
    pub fn build(table: &FlowTable) -> Self {
        Self::build_with_binth(table, DEFAULT_BINTH)
    }

    /// Build with an explicit leaf threshold (`binth`).
    pub fn build_with_binth(table: &FlowTable, binth: usize) -> Self {
        let schema = table.schema().clone();
        let rules: Vec<StoredRule> = table
            .rules()
            .iter()
            .enumerate()
            .map(|(index, rule)| StoredRule {
                index,
                priority: rule.priority,
                action: rule.action,
                rule: rule.clone(),
            })
            .collect();
        let mut node_count = 0;
        let mut stored_rules = 0;
        let consumed = vec![0u32; schema.field_count()];
        let root = build_node(
            &schema,
            rules,
            binth.max(1),
            &consumed,
            0,
            &mut node_count,
            &mut stored_rules,
        );
        let _ = schema;
        HyperCuts {
            root,
            node_count,
            stored_rules,
        }
    }

    /// Number of tree nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }
}

/// Does `rule` overlap the sub-space where field `field`'s bits `[shift, shift+CUT_BITS)`
/// equal `slice`?
fn rule_overlaps_slice(rule: &Rule, field: usize, shift: u32, width: u32, slice: u128) -> bool {
    let take = CUT_BITS.min(width - shift);
    let slice_mask_bits = ((1u128 << take) - 1) << shift;
    let rule_mask = rule.mask.get(field) & slice_mask_bits;
    // Bits the rule examines inside the slice must agree with the slice value.
    (rule.key.get(field) & rule_mask) == ((slice << shift) & rule_mask)
}

fn build_node(
    schema: &FieldSchema,
    rules: Vec<StoredRule>,
    binth: usize,
    consumed: &[u32],
    depth: u32,
    node_count: &mut usize,
    stored_rules: &mut usize,
) -> Node {
    *node_count += 1;
    if rules.len() <= binth || depth > 24 {
        *stored_rules += rules.len();
        return Node::Leaf(rules);
    }
    // Choose the field whose next slice of bits discriminates best: maximise the number
    // of rules that actually examine those bits, then the number of distinct values.
    let mut best: Option<((usize, usize), usize)> = None; // ((examining, distinct), field)
    for (f, &used) in consumed.iter().enumerate() {
        let width = schema.width(f);
        if used >= width {
            continue;
        }
        let take = CUT_BITS.min(width - used);
        let shift = width - used - take;
        let mut values: Vec<u128> = rules
            .iter()
            .filter(|r| r.rule.mask.get(f) >> shift & ((1 << take) - 1) != 0)
            .map(|r| r.rule.key.get(f) >> shift & ((1 << take) - 1))
            .collect();
        let examining = values.len();
        values.sort_unstable();
        values.dedup();
        let distinct = values.len();
        if examining >= 1
            && best
                .map(|(score, _)| (examining, distinct) > score)
                .unwrap_or(true)
        {
            best = Some(((examining, distinct), f));
        }
    }
    let Some((_, field)) = best else {
        // No remaining bit discriminates the rules; stop here.
        *stored_rules += rules.len();
        return Node::Leaf(rules);
    };
    let width = schema.width(field);
    let take = CUT_BITS.min(width - consumed[field]);
    let shift = width - consumed[field] - take;
    let mut new_consumed = consumed.to_vec();
    new_consumed[field] += take;

    let fanout = 1u128 << take;
    let subsets: Vec<Vec<StoredRule>> = (0..fanout)
        .map(|slice| {
            rules
                .iter()
                .filter(|r| rule_overlaps_slice(&r.rule, field, shift, width, slice))
                .cloned()
                .collect()
        })
        .collect();
    // Progress guard: if every child would hold every rule, the cut separates nothing;
    // stop with a leaf rather than recursing uselessly.
    if subsets.iter().all(|s| s.len() == rules.len()) {
        *stored_rules += rules.len();
        return Node::Leaf(rules);
    }
    let children = subsets
        .into_iter()
        .map(|subset| {
            build_node(
                schema,
                subset,
                binth,
                &new_consumed,
                depth + 1,
                node_count,
                stored_rules,
            )
        })
        .collect();
    Node::Internal {
        field,
        shift,
        children,
    }
}

impl Classifier for HyperCuts {
    fn classify(&self, header: &Key) -> Classification {
        let mut node = &self.root;
        let mut work = 0;
        loop {
            work += 1;
            match node {
                Node::Internal {
                    field,
                    shift,
                    children,
                } => {
                    let take_mask = (children.len() as u128) - 1;
                    let slice = (header.get(*field) >> shift) & take_mask;
                    node = &children[slice as usize];
                }
                Node::Leaf(rules) => {
                    let mut best: Option<&StoredRule> = None;
                    for r in rules {
                        work += 1;
                        if r.rule.matches(header)
                            && best
                                .map(|b| {
                                    (r.priority, std::cmp::Reverse(r.index))
                                        > (b.priority, std::cmp::Reverse(b.index))
                                })
                                .unwrap_or(true)
                        {
                            best = Some(r);
                        }
                    }
                    return match best {
                        Some(r) => Classification {
                            action: Some(r.action),
                            rule_index: Some(r.index),
                            work,
                        },
                        None => Classification {
                            action: None,
                            rule_index: None,
                            work,
                        },
                    };
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "hypercuts"
    }

    fn size_units(&self) -> usize {
        self.node_count + self.stored_rules
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::test_support;
    use crate::flowtable::FlowTable;

    #[test]
    fn agrees_with_reference_on_fig1() {
        let table = FlowTable::fig1_hyp();
        test_support::agrees_with_table_exhaustively(&HyperCuts::build(&table), &table);
    }

    #[test]
    fn agrees_with_reference_on_fig4() {
        let table = FlowTable::fig4_hyp2();
        test_support::agrees_with_table_exhaustively(&HyperCuts::build(&table), &table);
    }

    #[test]
    fn agrees_on_multi_field_whitelist() {
        let table = test_support::small_multi_field_table();
        test_support::agrees_with_table_exhaustively(&HyperCuts::build(&table), &table);
    }

    #[test]
    fn agrees_with_binth_one() {
        let table = test_support::small_multi_field_table();
        let c = HyperCuts::build_with_binth(&table, 1);
        test_support::agrees_with_table_exhaustively(&c, &table);
        assert!(c.node_count() > 1, "binth=1 must actually build a tree");
    }

    #[test]
    fn tree_smaller_threshold_builds_more_nodes() {
        let table = test_support::small_multi_field_table();
        let coarse = HyperCuts::build_with_binth(&table, 16);
        let fine = HyperCuts::build_with_binth(&table, 1);
        assert!(fine.node_count() >= coarse.node_count());
        assert!(fine.size_units() >= coarse.size_units());
    }

    #[test]
    fn work_is_traffic_independent() {
        use tse_packet::fields::Key;
        let table = test_support::small_multi_field_table();
        let c = HyperCuts::build(&table);
        let h = Key::from_values(table.schema(), &[1, 2, 3]);
        assert_eq!(c.classify(&h).work, c.classify(&h).work);
    }
}
