//! Baseline packet-classification algorithms that are *not* traffic-driven caches.
//!
//! §7 / §10 of the paper recommend, as the long-term mitigation, replacing TSS with
//! classifiers whose lookup cost depends only on the installed rule set — hierarchical
//! tries, HaRP, HyperCuts. Because they keep no per-traffic state, an attacker cannot
//! inflate their lookup cost by sending packets; this module implements three such
//! baselines so the claim can be measured (bench `classifier_compare`):
//!
//! * [`linear::LinearSearch`] — priority-ordered linear scan of the rules (the trivial
//!   baseline; cost `O(#rules)`),
//! * [`trie::HierarchicalTrie`] — per-field binary tries chained field by field
//!   (Gupta & McKeown's hierarchical tries),
//! * [`hypercuts::HyperCuts`] — a decision-tree classifier cutting the header space on
//!   the most discriminating fields (Singh et al.'s HyperCuts, simplified).

pub mod hypercuts;
pub mod linear;
pub mod trie;

use tse_packet::fields::Key;

use crate::rule::Action;

/// Result of a baseline classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Classification {
    /// Action of the highest-priority matching rule, or `None` if nothing matched.
    pub action: Option<Action>,
    /// Index of the matched rule in the source flow table.
    pub rule_index: Option<usize>,
    /// Abstract work units consumed by the lookup (nodes visited + rules compared).
    /// This is the quantity that stays flat under a TSE attack.
    pub work: usize,
}

/// A packet classifier built once from a flow table and queried per packet.
///
/// Implementors must be *stateless with respect to traffic*: `classify` takes `&self`,
/// so an attacker cannot grow the structure by sending packets — the property that makes
/// these algorithms immune to tuple-space explosion.
pub trait Classifier {
    /// Classify one header.
    fn classify(&self, header: &Key) -> Classification;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;

    /// Approximate memory footprint in "units" (nodes + stored rules), for the
    /// space/time comparison tables.
    fn size_units(&self) -> usize;
}

pub use hypercuts::HyperCuts;
pub use linear::LinearSearch;
pub use trie::HierarchicalTrie;

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use crate::flowtable::FlowTable;
    use tse_packet::fields::FieldSchema;

    /// Exhaustively compare a classifier against the reference flow-table lookup on every
    /// header of a (small) schema.
    pub fn agrees_with_table_exhaustively<C: Classifier>(classifier: &C, table: &FlowTable) {
        let schema = table.schema();
        assert!(
            schema.total_width() <= 16,
            "exhaustive check limited to small schemas"
        );
        let widths: Vec<u32> = schema.fields().iter().map(|f| f.width).collect();
        let mut header = vec![0u128; widths.len()];
        enumerate(&widths, 0, &mut header, &mut |values| {
            let key = Key::from_values(schema, values);
            let expect = table.lookup(&key).map(|m| m.action);
            let got = classifier.classify(&key).action;
            assert_eq!(
                got,
                expect,
                "{} disagrees on {:?}",
                classifier.name(),
                values
            );
        });
    }

    fn enumerate(widths: &[u32], idx: usize, current: &mut Vec<u128>, f: &mut impl FnMut(&[u128])) {
        if idx == widths.len() {
            f(current);
            return;
        }
        for v in 0..(1u128 << widths[idx]) {
            current[idx] = v;
            enumerate(widths, idx + 1, current, f);
        }
    }

    /// The Fig. 6 style ACL on a shrunken schema so exhaustive checks stay cheap.
    pub fn small_multi_field_table() -> FlowTable {
        let schema = FieldSchema::new(vec![
            tse_packet::fields::FieldDef::new("src", 6),
            tse_packet::fields::FieldDef::new("sport", 5),
            tse_packet::fields::FieldDef::new("dport", 5),
        ]);
        FlowTable::whitelist_default_deny(&schema, &[(2, 17), (0, 42), (1, 9)])
    }
}
