//! Hierarchical tries (Gupta & McKeown, "Algorithms for packet classification").
//!
//! One binary trie per field; a rule's per-field prefix is inserted into the field-`i`
//! trie, and the node where the prefix ends points to a field-`i+1` trie holding the
//! rules that share that prefix. Lookup walks the field-0 trie along the header bits and,
//! at *every* node on the path, recursively searches the next-field trie (the classic
//! backtracking search). The cost is bounded by the rule set's structure — `O(W^d)` in
//! the worst case for `d` fields of width `W` — and is completely unaffected by traffic.
//!
//! Restriction: per-field masks must be *prefix* masks (contiguous ones from the MSB).
//! Every ACL in the paper satisfies this (fields are either exact-matched or fully
//! wildcarded).

use tse_packet::fields::{FieldSchema, Key};

use crate::flowtable::FlowTable;
use crate::rule::Action;

use super::{Classification, Classifier};

#[derive(Debug, Clone, Copy)]
struct StoredRule {
    index: usize,
    priority: u32,
    action: Action,
}

#[derive(Debug, Default)]
struct Node {
    zero: Option<Box<Node>>,
    one: Option<Box<Node>>,
    /// Rules whose last-field prefix ends at this node.
    rules_here: Vec<StoredRule>,
    /// Trie over the next field for rules whose prefix of the current field ends here.
    next_field: Option<Box<FieldTrie>>,
}

#[derive(Debug)]
struct FieldTrie {
    field: usize,
    root: Node,
}

/// A hierarchical (multi-field) trie classifier.
#[derive(Debug)]
pub struct HierarchicalTrie {
    schema: FieldSchema,
    root: FieldTrie,
    node_count: usize,
}

/// Length of the prefix encoded by a mask, or `None` if the mask is not a prefix mask.
fn prefix_len(mask: u128, width: u32) -> Option<u32> {
    let len = mask.count_ones();
    let expect = if len == 0 {
        0
    } else if len >= width {
        if width == 128 {
            u128::MAX
        } else {
            ((1u128 << len) - 1) << (width - len)
        }
    } else {
        ((1u128 << len) - 1) << (width - len)
    };
    if len == 0 {
        return Some(0);
    }
    if mask == expect {
        Some(len)
    } else {
        None
    }
}

impl HierarchicalTrie {
    /// Build from a flow table.
    ///
    /// # Panics
    /// Panics if any rule uses a non-prefix per-field mask (not the case for the paper's
    /// ACLs; a production implementation would split such rules into prefix rules).
    pub fn build(table: &FlowTable) -> Self {
        let schema = table.schema().clone();
        let mut trie = HierarchicalTrie {
            root: FieldTrie {
                field: 0,
                root: Node::default(),
            },
            node_count: 1,
            schema,
        };
        for (index, rule) in table.rules().iter().enumerate() {
            let stored = StoredRule {
                index,
                priority: rule.priority,
                action: rule.action,
            };
            // Pre-compute prefix lengths per field, panicking on non-prefix masks.
            let prefixes: Vec<(u128, u32)> = (0..trie.schema.field_count())
                .map(|f| {
                    let width = trie.schema.width(f);
                    let mask = rule.mask.get(f);
                    let len = prefix_len(mask, width).unwrap_or_else(|| {
                        panic!("hierarchical trie requires prefix masks (rule {index}, field {f})")
                    });
                    (rule.key.get(f), len)
                })
                .collect();
            let field_count = trie.schema.field_count();
            let schema = trie.schema.clone();
            insert(
                &mut trie.root,
                &schema,
                &prefixes,
                field_count,
                stored,
                &mut trie.node_count,
            );
        }
        trie
    }

    /// Total number of trie nodes (memory proxy).
    pub fn node_count(&self) -> usize {
        self.node_count
    }
}

fn insert(
    trie: &mut FieldTrie,
    schema: &FieldSchema,
    prefixes: &[(u128, u32)],
    field_count: usize,
    stored: StoredRule,
    node_count: &mut usize,
) {
    let field = trie.field;
    let width = schema.width(field);
    let (value, plen) = prefixes[field];
    let mut node = &mut trie.root;
    for i in 0..plen {
        let bit = (value >> (width - 1 - i)) & 1;
        let child = if bit == 0 {
            &mut node.zero
        } else {
            &mut node.one
        };
        if child.is_none() {
            *child = Some(Box::new(Node::default()));
            *node_count += 1;
        }
        node = child.as_mut().expect("child just ensured");
    }
    if field + 1 == field_count {
        node.rules_here.push(stored);
    } else {
        if node.next_field.is_none() {
            node.next_field = Some(Box::new(FieldTrie {
                field: field + 1,
                root: Node::default(),
            }));
            *node_count += 1;
        }
        insert(
            node.next_field
                .as_mut()
                .expect("next field trie just ensured"),
            schema,
            prefixes,
            field_count,
            stored,
            node_count,
        );
    }
}

fn search(
    trie: &FieldTrie,
    schema: &FieldSchema,
    header: &Key,
    best: &mut Option<StoredRule>,
    work: &mut usize,
) {
    let field = trie.field;
    let width = schema.width(field);
    let value = header.get(field);
    let mut node = Some(&trie.root);
    let mut depth = 0u32;
    while let Some(n) = node {
        *work += 1;
        // Rules whose prefix for this (last) field ends here match the header.
        for r in &n.rules_here {
            *work += 1;
            if best
                .map(|b| {
                    (r.priority, std::cmp::Reverse(r.index))
                        > (b.priority, std::cmp::Reverse(b.index))
                })
                .unwrap_or(true)
            {
                *best = Some(*r);
            }
        }
        if let Some(next) = &n.next_field {
            search(next, schema, header, best, work);
        }
        if depth >= width {
            break;
        }
        let bit = (value >> (width - 1 - depth)) & 1;
        node = if bit == 0 {
            n.zero.as_deref()
        } else {
            n.one.as_deref()
        };
        depth += 1;
    }
}

impl Classifier for HierarchicalTrie {
    fn classify(&self, header: &Key) -> Classification {
        let mut best: Option<StoredRule> = None;
        let mut work = 0;
        search(&self.root, &self.schema, header, &mut best, &mut work);
        match best {
            Some(r) => Classification {
                action: Some(r.action),
                rule_index: Some(r.index),
                work,
            },
            None => Classification {
                action: None,
                rule_index: None,
                work,
            },
        }
    }

    fn name(&self) -> &'static str {
        "hierarchical-trie"
    }

    fn size_units(&self) -> usize {
        self.node_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::test_support;
    use crate::flowtable::FlowTable;
    use crate::rule::Action;
    use tse_packet::fields::{FieldSchema, Key};

    #[test]
    fn prefix_len_detection() {
        assert_eq!(prefix_len(0, 8), Some(0));
        assert_eq!(prefix_len(0b1111_1111, 8), Some(8));
        assert_eq!(prefix_len(0b1110_0000, 8), Some(3));
        assert_eq!(prefix_len(0b0110_0000, 8), None);
        assert_eq!(prefix_len(u128::MAX, 128), Some(128));
    }

    #[test]
    fn agrees_with_reference_on_fig1() {
        let table = FlowTable::fig1_hyp();
        test_support::agrees_with_table_exhaustively(&HierarchicalTrie::build(&table), &table);
    }

    #[test]
    fn agrees_with_reference_on_fig4() {
        let table = FlowTable::fig4_hyp2();
        test_support::agrees_with_table_exhaustively(&HierarchicalTrie::build(&table), &table);
    }

    #[test]
    fn agrees_on_multi_field_whitelist() {
        let table = test_support::small_multi_field_table();
        test_support::agrees_with_table_exhaustively(&HierarchicalTrie::build(&table), &table);
    }

    #[test]
    fn priority_tie_breaking_prefers_earlier_rule() {
        // Two identical match-all rules with equal priority: the earlier one must win.
        let schema = FieldSchema::hyp();
        let mut t = FlowTable::new(schema.clone());
        t.push(crate::rule::Rule::match_all(&schema, 5, Action::Allow));
        t.push(crate::rule::Rule::match_all(&schema, 5, Action::Deny));
        let c = HierarchicalTrie::build(&t);
        let r = c.classify(&Key::from_values(&schema, &[0]));
        assert_eq!(r.rule_index, Some(0));
        assert_eq!(r.action, Some(Action::Allow));
    }

    #[test]
    fn work_is_traffic_independent() {
        // The same header classified twice costs exactly the same; there is no
        // traffic-driven state to inflate.
        let table = test_support::small_multi_field_table();
        let c = HierarchicalTrie::build(&table);
        let schema = table.schema();
        let h = Key::from_values(schema, &[3, 9, 17]);
        let w1 = c.classify(&h).work;
        let w2 = c.classify(&h).work;
        assert_eq!(w1, w2);
        assert!(c.node_count() > 0);
        assert_eq!(c.size_units(), c.node_count());
    }

    #[test]
    #[should_panic]
    fn non_prefix_mask_rejected() {
        let schema = FieldSchema::hyp();
        let mut t = FlowTable::new(schema.clone());
        t.push(crate::rule::Rule::new(
            Key::from_values(&schema, &[0b001]),
            Key::from_values(&schema, &[0b101]), // non-contiguous mask
            1,
            Action::Allow,
        ));
        let _ = HierarchicalTrie::build(&t);
    }
}
