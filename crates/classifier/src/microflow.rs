//! The microflow cache: a small exact-match, per-transport-connection store (§2.2).
//!
//! The microflow cache sits in front of the megaflow cache. It matches on *all* header
//! fields (including noise fields such as TTL), holds only a couple of hundred entries,
//! and acts as "short-term memory" — it is often exhausted even in normal operation.
//! The attack traces deliberately randomise noise fields so that every packet is a new
//! microflow and therefore always falls through to the TSS megaflow lookup.

use std::collections::HashMap;

use tse_packet::flowkey::MicroflowKey;

use crate::rule::Action;

/// Default capacity, "a couple of hundred entries" (§2.2).
pub const DEFAULT_MICROFLOW_CAPACITY: usize = 256;

/// A bounded exact-match cache with FIFO eviction.
#[derive(Debug, Clone)]
pub struct MicroflowCache {
    capacity: usize,
    map: HashMap<MicroflowKey, Action>,
    fifo: std::collections::VecDeque<MicroflowKey>,
    hits: u64,
    misses: u64,
}

impl MicroflowCache {
    /// Create a cache with the default OVS-like capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_MICROFLOW_CAPACITY)
    }

    /// Create a cache with an explicit capacity (0 disables the cache entirely).
    pub fn with_capacity(capacity: usize) -> Self {
        MicroflowCache {
            capacity,
            map: HashMap::new(),
            fifo: std::collections::VecDeque::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Look up a microflow; `Some(action)` on a hit.
    pub fn lookup(&mut self, key: &MicroflowKey) -> Option<Action> {
        match self.map.get(key) {
            Some(a) => {
                self.hits += 1;
                Some(*a)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Install a microflow entry, evicting the oldest entry if at capacity.
    pub fn insert(&mut self, key: MicroflowKey, action: Action) {
        if self.capacity == 0 {
            return;
        }
        if let std::collections::hash_map::Entry::Occupied(mut e) = self.map.entry(key) {
            e.insert(action);
            return;
        }
        if self.map.len() >= self.capacity {
            if let Some(old) = self.fifo.pop_front() {
                self.map.remove(&old);
            }
        }
        self.map.insert(key, action);
        self.fifo.push_back(key);
    }

    /// Number of entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// (hits, misses) counters since creation.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Drop all entries (e.g. on revalidation).
    pub fn clear(&mut self) {
        self.map.clear();
        self.fifo.clear();
    }
}

impl Default for MicroflowCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tse_packet::builder::PacketBuilder;

    fn mf(id: u16) -> MicroflowKey {
        MicroflowKey::from_packet(
            &PacketBuilder::tcp_v4([10, 0, 0, 1], [10, 0, 0, 2], 1000, 80)
                .ip_id(id)
                .build(),
        )
    }

    #[test]
    fn hit_after_insert() {
        let mut c = MicroflowCache::new();
        assert_eq!(c.lookup(&mf(1)), None);
        c.insert(mf(1), Action::Allow);
        assert_eq!(c.lookup(&mf(1)), Some(Action::Allow));
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn fifo_eviction_at_capacity() {
        let mut c = MicroflowCache::with_capacity(2);
        c.insert(mf(1), Action::Allow);
        c.insert(mf(2), Action::Allow);
        c.insert(mf(3), Action::Allow); // evicts mf(1)
        assert_eq!(c.len(), 2);
        assert_eq!(c.lookup(&mf(1)), None);
        assert_eq!(c.lookup(&mf(3)), Some(Action::Allow));
    }

    #[test]
    fn noise_exhausts_small_cache() {
        // Each distinct IP id is a new microflow: with capacity 256, 1000 distinct
        // packets give no reuse benefit for later packets.
        let mut c = MicroflowCache::new();
        for i in 0..1000u16 {
            assert_eq!(c.lookup(&mf(i)), None);
            c.insert(mf(i), Action::Deny);
        }
        assert_eq!(c.len(), DEFAULT_MICROFLOW_CAPACITY);
        let (hits, misses) = c.stats();
        assert_eq!(hits, 0);
        assert_eq!(misses, 1000);
    }

    #[test]
    fn zero_capacity_disables_cache() {
        let mut c = MicroflowCache::with_capacity(0);
        c.insert(mf(1), Action::Allow);
        assert!(c.is_empty());
        assert_eq!(c.lookup(&mf(1)), None);
    }

    #[test]
    fn reinsert_updates_action() {
        let mut c = MicroflowCache::new();
        c.insert(mf(1), Action::Allow);
        c.insert(mf(1), Action::Deny);
        assert_eq!(c.len(), 1);
        assert_eq!(c.lookup(&mf(1)), Some(Action::Deny));
    }

    #[test]
    fn clear_empties() {
        let mut c = MicroflowCache::new();
        c.insert(mf(1), Action::Allow);
        c.clear();
        assert!(c.is_empty());
    }
}
