//! The ordered, priority-based flow table — the slow-path's authoritative representation
//! of the ACL (§2.1, §2.2).

use tse_packet::fields::{FieldSchema, Key};

use crate::rule::{Action, Rule};

/// An ordered set of wildcard rules. Lookup returns the highest-priority matching rule;
/// ties are broken by insertion order (earlier wins), matching OVS/OpenFlow semantics.
#[derive(Debug, Clone)]
pub struct FlowTable {
    schema: FieldSchema,
    rules: Vec<Rule>,
}

/// Result of a slow-path lookup: the matched rule index and its action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableMatch {
    /// Index into [`FlowTable::rules`] of the matched rule.
    pub rule_index: usize,
    /// The matched rule's action.
    pub action: Action,
    /// Number of rules inspected before the match was found (the slow-path's linear
    /// cost; feeds the CPU model).
    pub rules_inspected: usize,
}

impl FlowTable {
    /// Create an empty table over the given schema.
    pub fn new(schema: FieldSchema) -> Self {
        FlowTable {
            schema,
            rules: Vec::new(),
        }
    }

    /// The schema rules in this table match on.
    pub fn schema(&self) -> &FieldSchema {
        &self.schema
    }

    /// Append a rule.
    pub fn push(&mut self, rule: Rule) {
        assert_eq!(
            rule.key.len(),
            self.schema.field_count(),
            "rule key arity must match the table schema"
        );
        self.rules.push(rule);
    }

    /// All rules in insertion order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if the table holds no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Highest-priority match for `header`, if any. Walks rules in decreasing priority
    /// (stable for equal priorities).
    pub fn lookup(&self, header: &Key) -> Option<TableMatch> {
        // Build the priority-ordered view lazily; tables are tiny (a handful of ACL
        // rules) so a scan is fine and keeps insertion cheap.
        let mut order: Vec<usize> = (0..self.rules.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(self.rules[i].priority));
        for (inspected, &i) in order.iter().enumerate() {
            if self.rules[i].matches(header) {
                return Some(TableMatch {
                    rule_index: i,
                    action: self.rules[i].action,
                    rules_inspected: inspected + 1,
                });
            }
        }
        None
    }

    /// True if the table is *order-independent*: all pairs of rules are disjoint, so
    /// priorities are irrelevant (§2.1).
    pub fn is_order_independent(&self) -> bool {
        for i in 0..self.rules.len() {
            for j in (i + 1)..self.rules.len() {
                if self.rules[i].overlaps(&self.rules[j]) {
                    return false;
                }
            }
        }
        true
    }

    /// Indices of rules with strictly higher priority than `rule_index` (ties: earlier
    /// insertion also counts as higher). These are the rules a generated megaflow must be
    /// differentiated from.
    pub fn higher_priority_than(&self, rule_index: usize) -> Vec<usize> {
        let p = self.rules[rule_index].priority;
        (0..self.rules.len())
            .filter(|&i| {
                self.rules[i].priority > p || (self.rules[i].priority == p && i < rule_index)
            })
            .collect()
    }

    /// Render the table in the style of Fig. 1 / Fig. 4 / Fig. 6.
    pub fn render(&self) -> String {
        let mut order: Vec<usize> = (0..self.rules.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(self.rules[i].priority));
        order
            .iter()
            .map(|&i| format!("#{i} {}", self.rules[i].render(&self.schema)))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Convenience constructors for the ACLs used throughout the paper.
impl FlowTable {
    /// The Fig. 1 flow table: `001 -> allow`, `*** -> deny` over the 3-bit HYP protocol.
    pub fn fig1_hyp() -> Self {
        let schema = FieldSchema::hyp();
        let mut t = FlowTable::new(schema.clone());
        t.push(Rule::exact_on_field(&schema, 0, 0b001, 10, Action::Allow));
        t.push(Rule::match_all(&schema, 0, Action::Deny));
        t
    }

    /// The Fig. 4 two-field ACL: `HYP=001 -> allow`, `HYP2=1111 -> allow`, `* -> deny`.
    pub fn fig4_hyp2() -> Self {
        let schema = FieldSchema::hyp2();
        let mut t = FlowTable::new(schema.clone());
        t.push(Rule::exact_on_field(&schema, 0, 0b001, 20, Action::Allow));
        t.push(Rule::exact_on_field(&schema, 1, 0b1111, 10, Action::Allow));
        t.push(Rule::match_all(&schema, 0, Action::Deny));
        t
    }

    /// A generic WhiteList+DefaultDeny ACL: one exact-match allow rule per listed
    /// `(field, value)` pair (priorities decreasing in list order) plus a DefaultDeny.
    pub fn whitelist_default_deny(schema: &FieldSchema, allows: &[(usize, u128)]) -> Self {
        let mut t = FlowTable::new(schema.clone());
        let n = allows.len() as u32;
        for (i, (field, value)) in allows.iter().enumerate() {
            t.push(Rule::exact_on_field(
                schema,
                *field,
                *value,
                10 * (n - i as u32),
                Action::Allow,
            ));
        }
        t.push(Rule::match_all(schema, 0, Action::Deny));
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tse_packet::fields::Key;

    fn hyp_key(v: u128) -> Key {
        Key::from_values(&FieldSchema::hyp(), &[v])
    }

    #[test]
    fn fig1_lookup_allow_and_deny() {
        let t = FlowTable::fig1_hyp();
        let allow = t.lookup(&hyp_key(0b001)).unwrap();
        assert_eq!(allow.action, Action::Allow);
        let deny = t.lookup(&hyp_key(0b111)).unwrap();
        assert_eq!(deny.action, Action::Deny);
        assert!(deny.rules_inspected >= 2);
    }

    #[test]
    fn fig1_is_order_dependent() {
        // Fig. 1's rules overlap (001 matches both); the table is order-dependent.
        assert!(!FlowTable::fig1_hyp().is_order_independent());
    }

    #[test]
    fn fig4_priorities() {
        let t = FlowTable::fig4_hyp2();
        let schema = FieldSchema::hyp2();
        // HYP=001, HYP2=0000 -> first allow rule.
        let m = t
            .lookup(&Key::from_values(&schema, &[0b001, 0b0000]))
            .unwrap();
        assert_eq!((m.rule_index, m.action), (0, Action::Allow));
        // HYP=111, HYP2=1111 -> second allow rule.
        let m = t
            .lookup(&Key::from_values(&schema, &[0b111, 0b1111]))
            .unwrap();
        assert_eq!((m.rule_index, m.action), (1, Action::Allow));
        // HYP=111, HYP2=0000 -> deny.
        let m = t
            .lookup(&Key::from_values(&schema, &[0b111, 0b0000]))
            .unwrap();
        assert_eq!(m.action, Action::Deny);
    }

    #[test]
    fn paper_overlap_example_from_section_2_1() {
        // "a packet with source IP 10.0.0.1, ports 34521/443 matches both the second and
        // the last flow entries" of Fig. 6 — higher priority wins.
        let schema = FieldSchema::ovs_ipv4();
        let ip_src = schema.field_index("ip_src").unwrap();
        let tp_dst = schema.field_index("tp_dst").unwrap();
        let tp_src = schema.field_index("tp_src").unwrap();
        let t = FlowTable::whitelist_default_deny(
            &schema,
            &[(tp_dst, 80), (ip_src, 0x0a000001), (tp_src, 12345)],
        );
        let mut header = schema.zero_value();
        header.set(ip_src, 0x0a000001);
        header.set(tp_src, 34521);
        header.set(tp_dst, 443);
        let m = t.lookup(&header).unwrap();
        assert_eq!(m.action, Action::Allow);
        assert_eq!(m.rule_index, 1); // the ip_src rule, not the DefaultDeny
    }

    #[test]
    fn higher_priority_enumeration() {
        let t = FlowTable::fig4_hyp2();
        assert_eq!(t.higher_priority_than(2), vec![0, 1]);
        assert_eq!(t.higher_priority_than(1), vec![0]);
        assert!(t.higher_priority_than(0).is_empty());
    }

    #[test]
    fn empty_table_returns_none() {
        let t = FlowTable::new(FieldSchema::hyp());
        assert!(t.lookup(&hyp_key(0)).is_none());
        assert!(t.is_empty());
        assert!(t.is_order_independent());
    }

    #[test]
    fn render_fig1() {
        let r = FlowTable::fig1_hyp().render();
        assert!(r.contains("001 -> allow"));
        assert!(r.contains("*** -> deny"));
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut t = FlowTable::new(FieldSchema::hyp());
        t.push(Rule::match_all(&FieldSchema::hyp2(), 0, Action::Deny));
    }
}
