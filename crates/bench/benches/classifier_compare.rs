//! Criterion bench: TSS (under attack) vs. the attack-immune baselines (linear search,
//! hierarchical tries, HyperCuts) — the quantitative backing for the §7 mitigation
//! recommendation — plus the per-key vs. batched datapath entry points across every
//! fast-path backend.

use criterion::{criterion_group, criterion_main, Criterion};
use tse_attack::colocated::scenario_trace;
use tse_attack::scenarios::Scenario;
use tse_classifier::backend::{
    FastPathBackend, HyperCutsBackend, LinearSearchBackend, TrieBackend,
};
use tse_classifier::baseline::{Classifier, HierarchicalTrie, HyperCuts, LinearSearch};
use tse_classifier::flowtable::FlowTable;
use tse_classifier::rule::Action;
use tse_classifier::strategy::{generate_megaflow, MegaflowStrategy};
use tse_classifier::tss::{InsertError, LookupOutcome, MaskOrdering, MegaflowEntry, TupleSpace};
use tse_packet::fields::{self, FieldSchema, Key, Mask};
use tse_switch::datapath::Datapath;

fn bench_compare(c: &mut Criterion) {
    let schema = FieldSchema::ovs_ipv4();
    let scenario = Scenario::SipDp;
    let table = scenario.flow_table(&schema);
    let strategy = MegaflowStrategy::wildcarding(&schema);

    // TSS cache after the co-located attack.
    let mut tss = TupleSpace::new(schema.clone());
    for key in scenario_trace(&schema, scenario, &schema.zero_value()) {
        if tss.lookup(&key, 0.0).action.is_some() {
            continue;
        }
        if let Ok(g) = generate_megaflow(&table, &tss, &key, &strategy) {
            tss.insert(g.key, g.mask, g.action, 0.0).unwrap();
        }
    }
    let linear = LinearSearch::build(&table);
    let trie = HierarchicalTrie::build(&table);
    let hc = HyperCuts::build(&table);

    let mut victim = schema.zero_value();
    victim.set(schema.field_index("tp_dst").unwrap(), 80);

    let mut group = c.benchmark_group("classifier_compare_under_attack");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function(format!("tss_{}_masks", tss.mask_count()), |b| {
        b.iter(|| std::hint::black_box(tss.lookup(&victim, 0.0).action))
    });
    group.bench_function("linear_search", |b| {
        b.iter(|| std::hint::black_box(linear.classify(&victim).action))
    });
    group.bench_function("hierarchical_trie", |b| {
        b.iter(|| std::hint::black_box(trie.classify(&victim).action))
    });
    group.bench_function("hypercuts", |b| {
        b.iter(|| std::hint::black_box(hc.classify(&victim).action))
    });
    group.finish();
}

/// A victim-heavy steady-state workload: bursts of the victim's header interleaved with
/// recurring attack headers — the traffic mix the batched entry point is built for.
fn steady_workload(schema: &FieldSchema, scenario: Scenario) -> Vec<(Key, usize)> {
    let mut victim = schema.zero_value();
    victim.set(schema.field_index("tp_dst").unwrap(), 80);
    let attack = scenario_trace(schema, scenario, &schema.zero_value());
    let mut batch = Vec::new();
    for chunk in attack.chunks(4).take(64) {
        for _ in 0..8 {
            batch.push((victim.clone(), 1500));
        }
        for key in chunk {
            batch.push((key.clone(), 64));
        }
    }
    batch
}

/// Bench `process_key` in a loop vs. `process_batch` on one warmed datapath. The
/// datapath is warmed with the workload first so both modes measure steady-state
/// processing (all megaflows installed, no upcalls inside the timed region).
fn bench_modes<B: FastPathBackend>(
    group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>,
    label: &str,
    mut dp: Datapath<B>,
    workload: &[(Key, usize)],
) {
    dp.process_batch(workload, 0.0);
    group.bench_function(format!("{label}/process_key_loop"), |b| {
        b.iter(|| {
            let mut cost = 0.0;
            for (key, bytes) in workload {
                cost += dp.process_key(key, *bytes, 0.5).cost;
            }
            std::hint::black_box(cost)
        })
    });
    group.bench_function(format!("{label}/process_batch"), |b| {
        b.iter(|| std::hint::black_box(dp.process_batch(workload, 0.5).total_cost))
    });
}

fn bench_batch_vs_loop(c: &mut Criterion) {
    let schema = FieldSchema::ovs_ipv4();
    let scenario = Scenario::SipDp;
    let workload = steady_workload(&schema, scenario);

    let mut group = c.benchmark_group("datapath_batch_vs_per_key");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let table = scenario.flow_table(&schema);
    bench_modes(
        &mut group,
        "tss",
        Datapath::builder(table.clone()).build(),
        &workload,
    );
    bench_modes(
        &mut group,
        "linear",
        Datapath::builder(table.clone())
            .backend_fresh::<LinearSearchBackend>()
            .build(),
        &workload,
    );
    bench_modes(
        &mut group,
        "trie",
        Datapath::builder(table.clone())
            .backend_fresh::<TrieBackend>()
            .build(),
        &workload,
    );
    bench_modes(
        &mut group,
        "hypercuts",
        Datapath::builder(table)
            .backend_fresh::<HyperCutsBackend>()
            .build(),
        &workload,
    );
    group.finish();
}

/// A [`TupleSpace`] whose `find_conflict` is the index-less reference: a linear scan
/// over every entry of every tuple (no comparable-mask probes, no summary prefilter).
/// Everything else delegates, so megaflow generation runs unchanged — only the
/// conflict check differs.
struct ScanConflict(TupleSpace);

impl FastPathBackend for ScanConflict {
    fn fresh(schema: &FieldSchema) -> Self {
        ScanConflict(TupleSpace::new(schema.clone()))
    }
    fn name(&self) -> &'static str {
        "tss-scan-conflict"
    }
    fn schema(&self) -> &FieldSchema {
        self.0.schema()
    }
    fn lookup(&mut self, header: &Key, now: f64) -> LookupOutcome {
        self.0.lookup(header, now)
    }
    fn insert_megaflow(
        &mut self,
        key: Key,
        mask: Mask,
        action: Action,
        now: f64,
    ) -> Result<(), InsertError> {
        self.0.insert(key, mask, action, now)
    }
    fn find_conflict(&self, key: &Key, mask: &Mask) -> Option<(Key, Mask)> {
        let key = key.apply_mask(mask);
        self.0
            .entries()
            .find(|e| !fields::disjoint(&key, mask, &e.key, &e.mask))
            .map(|e| (e.key.clone(), e.mask.clone()))
    }
    fn clear(&mut self) {
        self.0.clear()
    }
    fn mask_count(&self) -> usize {
        self.0.mask_count()
    }
    fn entry_count(&self) -> usize {
        self.0.entry_count()
    }
    fn set_mask_ordering(&mut self, ordering: MaskOrdering) {
        self.0.set_ordering(ordering)
    }
    fn evict_where(&mut self, predicate: &mut dyn FnMut(&MegaflowEntry) -> bool) -> usize {
        self.0.remove_where(|e| predicate(e))
    }
}

/// Drive the slow path for the whole scenario trace through `cache` — the insert-heavy
/// phase of an attack, dominated by `find_conflict`.
fn build_attacked_cache<B: FastPathBackend>(
    cache: &mut B,
    table: &FlowTable,
    strategy: &MegaflowStrategy,
    trace: &[Key],
) -> usize {
    for key in trace {
        if cache.lookup(key, 0.0).action.is_some() {
            continue;
        }
        if let Ok(g) = generate_megaflow(table, cache, key, strategy) {
            cache.insert_megaflow(g.key, g.mask, g.action, 0.0).unwrap();
        }
    }
    cache.mask_count()
}

/// The comparable-mask conflict index vs. the index-less full entry scan: slow-path
/// megaflow generation against a fully exploded cache (`generate_megaflow` consults
/// `find_conflict` through the backend trait, so the two variants differ only in the
/// conflict check), plus the raw conflict probe itself.
fn bench_conflict_index(c: &mut Criterion) {
    let schema = FieldSchema::ovs_ipv4();
    let scenario = Scenario::SipDp;
    let table = scenario.flow_table(&schema);
    let strategy = MegaflowStrategy::wildcarding(&schema);
    let trace = scenario_trace(&schema, scenario, &schema.zero_value());

    let mut group = c.benchmark_group("tss_conflict_index");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));

    let mut indexed = TupleSpace::new(schema.clone());
    build_attacked_cache(&mut indexed, &table, &strategy, &trace);
    let scan = ScanConflict(indexed.clone());

    // 64 fresh denied headers the attack never sent: each generation run performs one
    // conflict check per header against the 513-mask cache.
    let fresh: Vec<Key> = (0..64u128)
        .map(|i| {
            let mut k = schema.zero_value();
            k.set(schema.field_index("ip_src").unwrap(), 0xc0a8_0000 + i);
            k.set(schema.field_index("tp_src").unwrap(), 2_000 + i);
            k.set(schema.field_index("tp_dst").unwrap(), 50_000 + i);
            k
        })
        .collect();
    group.bench_function("generate_vs_exploded_cache/indexed", |b| {
        b.iter(|| {
            let mut generated = 0usize;
            for h in &fresh {
                if generate_megaflow(&table, &indexed, h, &strategy).is_ok() {
                    generated += 1;
                }
            }
            std::hint::black_box(generated)
        })
    });
    group.bench_function("generate_vs_exploded_cache/full_scan", |b| {
        b.iter(|| {
            let mut generated = 0usize;
            for h in &fresh {
                if generate_megaflow(&table, &scan, h, &strategy).is_ok() {
                    generated += 1;
                }
            }
            std::hint::black_box(generated)
        })
    });
    let probe_key = {
        let mut k = schema.zero_value();
        k.set(schema.field_index("ip_src").unwrap(), 0xdead_beef);
        k.set(schema.field_index("tp_dst").unwrap(), 65_000);
        k
    };
    // A partial candidate mask of the shape generation narrows with (high bits of the
    // targeted fields): comparable with some tuples, summary-prefiltered on the rest.
    let probe_mask = {
        let mut m = schema.empty_mask();
        m.set(schema.field_index("ip_src").unwrap(), 0xffff_0000);
        m.set(schema.field_index("tp_dst").unwrap(), 0xff00);
        m
    };
    assert_eq!(
        indexed.find_conflict(&probe_key, &probe_mask),
        FastPathBackend::find_conflict(&scan, &probe_key, &probe_mask)
    );
    group.bench_function(
        format!("find_conflict_miss/indexed_{}_masks", indexed.mask_count()),
        |b| b.iter(|| std::hint::black_box(indexed.find_conflict(&probe_key, &probe_mask))),
    );
    group.bench_function("find_conflict_miss/full_scan", |b| {
        b.iter(|| {
            std::hint::black_box(FastPathBackend::find_conflict(
                &scan,
                &probe_key,
                &probe_mask,
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_compare,
    bench_batch_vs_loop,
    bench_conflict_index
);
criterion_main!(benches);
