//! Criterion bench: TSS (under attack) vs. the attack-immune baselines (linear search,
//! hierarchical tries, HyperCuts) — the quantitative backing for the §7 mitigation
//! recommendation — plus the per-key vs. batched datapath entry points across every
//! fast-path backend.

use criterion::{criterion_group, criterion_main, Criterion};
use tse_attack::colocated::scenario_trace;
use tse_attack::scenarios::Scenario;
use tse_classifier::backend::{
    FastPathBackend, HyperCutsBackend, LinearSearchBackend, TrieBackend,
};
use tse_classifier::baseline::{Classifier, HierarchicalTrie, HyperCuts, LinearSearch};
use tse_classifier::strategy::{generate_megaflow, MegaflowStrategy};
use tse_classifier::tss::TupleSpace;
use tse_packet::fields::{FieldSchema, Key};
use tse_switch::datapath::Datapath;

fn bench_compare(c: &mut Criterion) {
    let schema = FieldSchema::ovs_ipv4();
    let scenario = Scenario::SipDp;
    let table = scenario.flow_table(&schema);
    let strategy = MegaflowStrategy::wildcarding(&schema);

    // TSS cache after the co-located attack.
    let mut tss = TupleSpace::new(schema.clone());
    for key in scenario_trace(&schema, scenario, &schema.zero_value()) {
        if tss.lookup(&key, 0.0).action.is_some() {
            continue;
        }
        if let Ok(g) = generate_megaflow(&table, &tss, &key, &strategy) {
            tss.insert(g.key, g.mask, g.action, 0.0).unwrap();
        }
    }
    let linear = LinearSearch::build(&table);
    let trie = HierarchicalTrie::build(&table);
    let hc = HyperCuts::build(&table);

    let mut victim = schema.zero_value();
    victim.set(schema.field_index("tp_dst").unwrap(), 80);

    let mut group = c.benchmark_group("classifier_compare_under_attack");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function(format!("tss_{}_masks", tss.mask_count()), |b| {
        b.iter(|| std::hint::black_box(tss.lookup(&victim, 0.0).action))
    });
    group.bench_function("linear_search", |b| {
        b.iter(|| std::hint::black_box(linear.classify(&victim).action))
    });
    group.bench_function("hierarchical_trie", |b| {
        b.iter(|| std::hint::black_box(trie.classify(&victim).action))
    });
    group.bench_function("hypercuts", |b| {
        b.iter(|| std::hint::black_box(hc.classify(&victim).action))
    });
    group.finish();
}

/// A victim-heavy steady-state workload: bursts of the victim's header interleaved with
/// recurring attack headers — the traffic mix the batched entry point is built for.
fn steady_workload(schema: &FieldSchema, scenario: Scenario) -> Vec<(Key, usize)> {
    let mut victim = schema.zero_value();
    victim.set(schema.field_index("tp_dst").unwrap(), 80);
    let attack = scenario_trace(schema, scenario, &schema.zero_value());
    let mut batch = Vec::new();
    for chunk in attack.chunks(4).take(64) {
        for _ in 0..8 {
            batch.push((victim.clone(), 1500));
        }
        for key in chunk {
            batch.push((key.clone(), 64));
        }
    }
    batch
}

/// Bench `process_key` in a loop vs. `process_batch` on one warmed datapath. The
/// datapath is warmed with the workload first so both modes measure steady-state
/// processing (all megaflows installed, no upcalls inside the timed region).
fn bench_modes<B: FastPathBackend>(
    group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>,
    label: &str,
    mut dp: Datapath<B>,
    workload: &[(Key, usize)],
) {
    dp.process_batch(workload, 0.0);
    group.bench_function(format!("{label}/process_key_loop"), |b| {
        b.iter(|| {
            let mut cost = 0.0;
            for (key, bytes) in workload {
                cost += dp.process_key(key, *bytes, 0.5).cost;
            }
            std::hint::black_box(cost)
        })
    });
    group.bench_function(format!("{label}/process_batch"), |b| {
        b.iter(|| std::hint::black_box(dp.process_batch(workload, 0.5).total_cost))
    });
}

fn bench_batch_vs_loop(c: &mut Criterion) {
    let schema = FieldSchema::ovs_ipv4();
    let scenario = Scenario::SipDp;
    let workload = steady_workload(&schema, scenario);

    let mut group = c.benchmark_group("datapath_batch_vs_per_key");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let table = scenario.flow_table(&schema);
    bench_modes(
        &mut group,
        "tss",
        Datapath::builder(table.clone()).build(),
        &workload,
    );
    bench_modes(
        &mut group,
        "linear",
        Datapath::builder(table.clone())
            .backend_fresh::<LinearSearchBackend>()
            .build(),
        &workload,
    );
    bench_modes(
        &mut group,
        "trie",
        Datapath::builder(table.clone())
            .backend_fresh::<TrieBackend>()
            .build(),
        &workload,
    );
    bench_modes(
        &mut group,
        "hypercuts",
        Datapath::builder(table)
            .backend_fresh::<HyperCutsBackend>()
            .build(),
        &workload,
    );
    group.finish();
}

criterion_group!(benches, bench_compare, bench_batch_vs_loop);
criterion_main!(benches);
