//! Criterion bench: TSS (under attack) vs. the attack-immune baselines (linear search,
//! hierarchical tries, HyperCuts) — the quantitative backing for the §7 mitigation
//! recommendation.

use criterion::{criterion_group, criterion_main, Criterion};
use tse_attack::colocated::scenario_trace;
use tse_attack::scenarios::Scenario;
use tse_classifier::baseline::{Classifier, HierarchicalTrie, HyperCuts, LinearSearch};
use tse_classifier::strategy::{generate_megaflow, MegaflowStrategy};
use tse_classifier::tss::TupleSpace;
use tse_packet::fields::FieldSchema;

fn bench_compare(c: &mut Criterion) {
    let schema = FieldSchema::ovs_ipv4();
    let scenario = Scenario::SipDp;
    let table = scenario.flow_table(&schema);
    let strategy = MegaflowStrategy::wildcarding(&schema);

    // TSS cache after the co-located attack.
    let mut tss = TupleSpace::new(schema.clone());
    for key in scenario_trace(&schema, scenario, &schema.zero_value()) {
        if tss.lookup(&key, 0.0).action.is_some() {
            continue;
        }
        if let Ok(g) = generate_megaflow(&table, &tss, &key, &strategy) {
            tss.insert(g.key, g.mask, g.action, 0.0).unwrap();
        }
    }
    let linear = LinearSearch::build(&table);
    let trie = HierarchicalTrie::build(&table);
    let hc = HyperCuts::build(&table);

    let mut victim = schema.zero_value();
    victim.set(schema.field_index("tp_dst").unwrap(), 80);

    let mut group = c.benchmark_group("classifier_compare_under_attack");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function(format!("tss_{}_masks", tss.mask_count()), |b| {
        b.iter(|| std::hint::black_box(tss.lookup(&victim, 0.0).action))
    });
    group.bench_function("linear_search", |b| {
        b.iter(|| std::hint::black_box(linear.classify(&victim).action))
    });
    group.bench_function("hierarchical_trie", |b| {
        b.iter(|| std::hint::black_box(trie.classify(&victim).action))
    });
    group.bench_function("hypercuts", |b| {
        b.iter(|| std::hint::black_box(hc.classify(&victim).action))
    });
    group.finish();
}

criterion_group!(benches, bench_compare);
criterion_main!(benches);
