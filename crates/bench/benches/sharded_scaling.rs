//! Multi-shard scaling of the sharded datapath: the batched SipDp explosion pushed
//! through `ShardedDatapath::process_timed_batch` at 1–8 shards, once per execution
//! model.
//!
//! Shards are independent by construction, so the per-shard fan-out is embarrassingly
//! parallel: with a pooled executor every shard's sub-batch (upcalls, megaflow
//! installs, increasingly expensive mask scans) runs on its own worker thread, while
//! `SequentialExecutor` walks the same sub-batches on one core. The
//! `sharded_scaling/{sequential,threaded,persistent}/N` triples therefore measure
//! exactly the speedup each execution model buys on this machine: `threaded` spawns
//! scoped workers per batch, `persistent` feeds long-lived parked workers (spawn cost
//! amortised to zero — the PMD-thread model), and both drive the same allocation-free
//! steering pre-partition pass. On a single-core container the pooled rows land on
//! the sequential ones (hand-off overhead only — the persistent rows sit within
//! noise of the threaded ones at every shard count, since neither can parallelise
//! anything there); on an N-core PMD box they approach min(shards, cores)×.
//!
//! The outputs are executor-independent (asserted by `tests/executor_parity.rs`), so
//! all rows of a triple do identical algorithmic work.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use tse_attack::scenarios::Scenario;
use tse_classifier::flowtable::FlowTable;
use tse_packet::fields::{FieldSchema, Key};
use tse_switch::datapath::Datapath;
use tse_switch::exec::{
    PersistentPoolExecutor, SequentialExecutor, ShardExecutor, ThreadPoolExecutor,
};
use tse_switch::pmd::{ShardedDatapath, Steering};

/// The batched SipDp workload: the co-located explosion keys (source-IP × dest-port
/// bit inversions, naturally spread over the RSS hash space) replayed as one long
/// timed batch.
fn sipdp_batch(schema: &FieldSchema, events: usize) -> Vec<(Key, usize, f64)> {
    Scenario::SipDp
        .key_iter(schema, &schema.zero_value())
        .cycle()
        .take(events)
        .enumerate()
        .map(|(i, k)| (k, 64usize, i as f64 * 1e-4))
        .collect()
}

fn bench_sharded_scaling(c: &mut Criterion) {
    let schema = FieldSchema::ovs_ipv4();
    let table = Scenario::SipDp.flow_table(&schema);
    let batch = sipdp_batch(&schema, 16_384);

    let mut group = c.benchmark_group("sharded_scaling");
    group.sample_size(10);
    for shards in [1usize, 2, 4, 8] {
        let run = |executor: Box<dyn ShardExecutor>, b: &mut criterion::Bencher| {
            b.iter_batched(
                || {
                    ShardedDatapath::from_builder(
                        Datapath::builder(FlowTable::clone(&table)),
                        shards,
                        Steering::Rss,
                    )
                    .with_executor(executor.clone())
                },
                |mut dp| dp.process_timed_batch(&batch),
                BatchSize::LargeInput,
            );
        };
        group.bench_with_input(BenchmarkId::new("sequential", shards), &shards, |b, _| {
            run(Box::new(SequentialExecutor), b)
        });
        group.bench_with_input(BenchmarkId::new("threaded", shards), &shards, |b, _| {
            run(Box::new(ThreadPoolExecutor::new(shards)), b)
        });
        // One pool reused across every iteration — exactly how a long-lived PMD
        // deployment would run it, so the measured hand-off cost excludes spawning.
        let pool = PersistentPoolExecutor::new(shards);
        group.bench_with_input(BenchmarkId::new("persistent", shards), &shards, |b, _| {
            run(Box::new(pool.clone()), b)
        });
    }
    group.finish();
}

criterion_group!(sharded_scaling, bench_sharded_scaling);
criterion_main!(sharded_scaling);
