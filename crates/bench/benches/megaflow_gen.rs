//! Criterion bench: slow-path megaflow generation cost per strategy (the ablation of the
//! DESIGN.md §7 strategy choice), and the cost of one MFCGuard cleaning pass.

use criterion::{criterion_group, criterion_main, Criterion};
use tse_attack::colocated::scenario_trace;
use tse_attack::scenarios::Scenario;
use tse_classifier::strategy::{generate_megaflow, FieldStrategy, MegaflowStrategy};
use tse_classifier::tss::TupleSpace;
use tse_mitigation::guard::{GuardConfig, MfcGuard};
use tse_packet::fields::FieldSchema;
use tse_switch::datapath::Datapath;

fn bench_generation(c: &mut Criterion) {
    let schema = FieldSchema::ovs_ipv4();
    let table = Scenario::SipDp.flow_table(&schema);
    let strategies = [
        ("wildcarding", MegaflowStrategy::wildcarding(&schema)),
        ("chunked_4", MegaflowStrategy::chunked(&schema, 4)),
        (
            "exact_match",
            MegaflowStrategy::uniform(&schema, FieldStrategy::Exact),
        ),
    ];
    let trace = scenario_trace(&schema, Scenario::Dp, &schema.zero_value());

    let mut group = c.benchmark_group("megaflow_generation");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for (name, strategy) in &strategies {
        group.bench_function(*name, |b| {
            b.iter(|| {
                let mut cache = TupleSpace::new(schema.clone());
                for key in &trace {
                    if cache.lookup(key, 0.0).action.is_some() {
                        continue;
                    }
                    if let Ok(g) = generate_megaflow(&table, &cache, key, strategy) {
                        cache.insert(g.key, g.mask, g.action, 0.0).unwrap();
                    }
                }
                std::hint::black_box(cache.mask_count())
            })
        });
    }
    group.finish();
}

fn bench_guard_pass(c: &mut Criterion) {
    let schema = FieldSchema::ovs_ipv4();
    let mut group = c.benchmark_group("mfcguard_pass");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function("clean_spdp_cache", |b| {
        b.iter_batched(
            || {
                let table = Scenario::SpDp.flow_table(&schema);
                let mut dp = Datapath::new(table);
                for (i, key) in scenario_trace(&schema, Scenario::SpDp, &schema.zero_value())
                    .iter()
                    .enumerate()
                {
                    dp.process_key(key, 64, i as f64 * 1e-4);
                }
                dp
            },
            |mut dp| {
                let mut guard = MfcGuard::new(GuardConfig::default());
                std::hint::black_box(guard.run_once(&mut dp, 1.0, 100.0).entries_removed)
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_generation, bench_guard_pass);
criterion_main!(benches);
