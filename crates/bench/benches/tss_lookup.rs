//! Criterion bench: TSS megaflow lookup latency as the number of masks grows
//! (the micro-benchmark behind Fig. 9a's throughput curve — Observation 1 in wall-clock
//! form).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tse_attack::colocated::scenario_trace;
use tse_attack::scenarios::Scenario;
use tse_classifier::strategy::{generate_megaflow, MegaflowStrategy};
use tse_classifier::tss::TupleSpace;
use tse_packet::fields::{FieldSchema, Key};

/// Build a cache attacked by the given scenario and return (cache, victim header).
fn attacked_cache(scenario: Scenario) -> (TupleSpace, Key) {
    let schema = FieldSchema::ovs_ipv4();
    let table = if scenario.has_attack_traffic() {
        scenario.flow_table(&schema)
    } else {
        Scenario::Baseline.flow_table(&schema)
    };
    let strategy = MegaflowStrategy::wildcarding(&schema);
    let mut cache = TupleSpace::new(schema.clone());
    // Victim entry first.
    let mut victim = schema.zero_value();
    victim.set(schema.field_index("tp_dst").unwrap(), 80);
    let g = generate_megaflow(&table, &cache, &victim, &strategy).unwrap();
    cache.insert(g.key, g.mask, g.action, 0.0).unwrap();
    // Attack entries.
    if scenario.has_attack_traffic() {
        for key in scenario_trace(&schema, scenario, &schema.zero_value()) {
            if cache.lookup(&key, 0.0).action.is_some() {
                continue;
            }
            if let Ok(g) = generate_megaflow(&table, &cache, &key, &strategy) {
                cache.insert(g.key, g.mask, g.action, 0.0).unwrap();
            }
        }
    }
    (cache, victim)
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("tss_lookup_vs_masks");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for scenario in [
        Scenario::Baseline,
        Scenario::Dp,
        Scenario::SpDp,
        Scenario::SipDp,
    ] {
        let (mut cache, victim) = attacked_cache(scenario);
        let masks = cache.mask_count();
        group.bench_with_input(
            BenchmarkId::new(
                "victim_lookup",
                format!("{}_{}masks", scenario.name(), masks),
            ),
            &victim,
            |b, v| b.iter(|| std::hint::black_box(cache.lookup(v, 0.0).masks_scanned)),
        );
    }
    group.finish();
}

fn bench_miss(c: &mut Criterion) {
    let mut group = c.benchmark_group("tss_miss_scans_all_masks");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let schema = FieldSchema::ovs_ipv4();
    let (mut cache, _) = attacked_cache(Scenario::SipDp);
    // A header no entry covers under the suppressed deny rules is impossible (entries are
    // exhaustive for seen traffic), so force a miss by clearing deny entries.
    cache.remove_where(|e| e.action == tse_classifier::rule::Action::Deny);
    let probe = Key::from_values(&schema, &[9, 9, 9, 9, 9, 9]);
    group.bench_function("miss_after_guard_clean", |b| {
        b.iter(|| std::hint::black_box(cache.lookup(&probe, 0.0).masks_scanned))
    });
    group.finish();
}

criterion_group!(benches, bench_lookup, bench_miss);
criterion_main!(benches);
