//! Wire-ingestion cost: what does classifying from raw Ethernet bytes add over
//! classifying from pre-parsed keys?
//!
//! Three rows per batch size over the same SipDp-shaped traffic:
//!
//! * `key_level_baseline` — the pre-wire datapath input: [`FlowKey::from_packet`]
//!   over already-parsed [`Packet`] structs (header-field shuffling only, the floor
//!   every wire row is measured against);
//! * `per_frame_decode` — the naive ingest loop: [`wire::decode`] each frame into a
//!   fresh `Packet` and derive its key, one at a time;
//! * `batched_extract` — the batch path the sharded datapath actually uses:
//!   [`extract_trace_into`] with a warm [`ExtractScratch`], one parser pass per
//!   frame and zero heap allocations in steady state (pinned by
//!   `tests/alloc_audit.rs`).
//!
//! The interesting comparison is `batched_extract` vs `per_frame_decode` (the batch
//! row decodes the same frames *plus* stores every per-frame `Result` and the error
//! accounting the datapath consumes — that bookkeeping is the measured overhead of
//! the reusable-scratch contract) and `batched_extract` vs `key_level_baseline`
//! (the full price of byte-level ingestion).
//!
//! Exported into `BENCH_wire.json` via the stub's `TSE_BENCH_OUT` log and
//! `bench_ingest --group wire_extraction`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tse_packet::builder::PacketBuilder;
use tse_packet::flowkey::FlowKey;
use tse_packet::wire::{self, Encap, WireTrace};
use tse_packet::{extract_trace_into, ExtractScratch, Packet};

/// SipDp-shaped traffic: the attacker walks source addresses and ports while the
/// service tuple stays fixed, so every frame decodes but no two keys collide.
fn packets(n: usize) -> Vec<Packet> {
    (0..n)
        .map(|i| {
            PacketBuilder::tcp_v4(
                [10, (i >> 8) as u8, i as u8, 7],
                [10, 0, 0, 99],
                1024 + (i % 40_000) as u16,
                80,
            )
            .build()
        })
        .collect()
}

fn bench_wire_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_extraction");
    for batch in [256usize, 4096] {
        let pkts = packets(batch);
        let mut trace = WireTrace::new();
        for (i, p) in pkts.iter().enumerate() {
            trace.push_packet(i as f64 * 1e-5, p, Encap::None);
        }

        group.bench_with_input(
            BenchmarkId::new("key_level_baseline", batch),
            &batch,
            |b, _| {
                b.iter(|| {
                    let mut acc = 0u64;
                    for p in &pkts {
                        acc = acc.wrapping_add(FlowKey::from_packet(p).tp_src as u64);
                    }
                    acc
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("per_frame_decode", batch),
            &batch,
            |b, _| {
                b.iter(|| {
                    let mut acc = 0u64;
                    for frame in trace.frames() {
                        let pkt = wire::decode(frame).expect("well-formed frame");
                        acc = acc.wrapping_add(FlowKey::from_packet(&pkt).tp_src as u64);
                    }
                    acc
                })
            },
        );
        let mut scratch = ExtractScratch::new();
        group.bench_with_input(
            BenchmarkId::new("batched_extract", batch),
            &batch,
            |b, _| {
                b.iter(|| {
                    extract_trace_into(&trace, &mut scratch);
                    scratch.counts().decoded
                })
            },
        );
    }
    group.finish();
}

criterion_group!(wire_extraction, bench_wire_extraction);
criterion_main!(wire_extraction);
