//! Integration tests of the benchmark-report subsystem: JSON-layer round-trips
//! (including property tests over arbitrary strings and raw f64 bit patterns), the
//! non-finite rejection rules, and the `bench_diff` / `bench_ingest` binaries driven
//! end-to-end as child processes.

use std::path::{Path, PathBuf};
use std::process::Command;

use proptest::collection;
use proptest::prelude::*;

use tse_bench::report::{json, BenchReport, Json, Metric, ReportFile};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tse_report_it_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn every_documented_unit_roundtrips() {
    let units = [
        ("gbps", true, true),
        ("pps", true, true),
        ("masks", true, false),
        ("entries", true, false),
        ("packets", true, false),
        ("percent", true, false),
        ("cost_seconds", true, false),
        ("seconds_wall", false, false),
        ("mpps_wall", false, true),
        ("installs_per_sec_wall", false, true),
    ];
    let mut report = BenchReport::new("units", "default");
    for (i, (unit, deterministic, higher)) in units.iter().enumerate() {
        let value = 1.5 + i as f64 * 0.25;
        let mut m = if *deterministic {
            Metric::deterministic(&format!("m_{unit}"), unit, value)
        } else {
            Metric::wall(&format!("m_{unit}"), unit, value)
        };
        if *higher {
            m = m.higher_is_better();
        }
        report.push(m);
    }
    let mut file = ReportFile::new("units");
    file.upsert(report);
    let back = ReportFile::from_json_text(&file.to_json_text()).unwrap();
    let r = back.report("units", "default").unwrap();
    for (i, (unit, deterministic, higher)) in units.iter().enumerate() {
        let m = r.metric(&format!("m_{unit}")).unwrap();
        assert_eq!(m.unit, *unit);
        assert_eq!(m.value, 1.5 + i as f64 * 0.25);
        assert_eq!(m.deterministic, *deterministic);
        assert_eq!(m.higher_is_better, *higher);
    }
}

#[test]
fn non_finite_values_are_unrepresentable() {
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        assert!(json::write(&Json::Num(bad)).is_err());
    }
    // Non-finite literals and overflow-to-infinity must not parse either.
    for text in [
        "NaN",
        "Infinity",
        "-Infinity",
        "nan",
        "inf",
        "1e999",
        "-2e308",
    ] {
        assert!(json::parse(text).is_err(), "{text:?} must be rejected");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any Unicode string — escapes, control characters, astral-plane codepoints —
    /// survives a write/parse round trip exactly.
    #[test]
    fn arbitrary_strings_roundtrip(cps in collection::vec(0u32..0x110000, 0..48)) {
        let s: String = cps
            .iter()
            .filter_map(|&cp| char::from_u32(cp)) // skips the surrogate range
            .collect();
        let written = json::write(&Json::Str(s.clone())).unwrap();
        let back = json::parse(&written).unwrap();
        prop_assert_eq!(back.as_str(), Some(s.as_str()));
    }

    /// Strings embedded as object keys round-trip too (keys take a different code
    /// path than values in the parser).
    #[test]
    fn arbitrary_object_keys_roundtrip(cps in collection::vec(0u32..0x110000, 1..24)) {
        let key: String = cps.iter().filter_map(|&cp| char::from_u32(cp)).collect();
        let obj = Json::Obj(vec![(key.clone(), Json::Num(1.0))]);
        let back = json::parse(&json::write(&obj).unwrap()).unwrap();
        prop_assert_eq!(back.get(&key).and_then(Json::as_num), Some(1.0));
    }

    /// Every finite f64 bit pattern — subnormals, -0.0, f64::MAX — round-trips
    /// bit-exactly. This is what the strict deterministic diff relies on.
    #[test]
    fn arbitrary_f64_bits_roundtrip(bits in 0u64..=u64::MAX) {
        let n = f64::from_bits(bits);
        if n.is_finite() {
            let written = json::write(&Json::Arr(vec![Json::Num(n)])).unwrap();
            let back = json::parse(&written).unwrap();
            let reparsed = back.as_arr().unwrap()[0].as_num().unwrap();
            prop_assert_eq!(reparsed.to_bits(), n.to_bits(), "{} -> {}", n, reparsed);
        } else {
            prop_assert!(json::write(&Json::Num(n)).is_err());
        }
    }
}

// ---------------------------------------------------------------------------
// bench_diff / bench_ingest binaries, end to end.
// ---------------------------------------------------------------------------

fn write_file(path: &Path, metric_value: f64, deterministic: bool, wall_value: f64) {
    let mut report = BenchReport::new("fig_x", "duration=10");
    report.push(if deterministic {
        Metric::deterministic("cost", "cost_seconds", metric_value)
    } else {
        Metric::wall("cost", "seconds_wall", metric_value)
    });
    report.push(Metric::wall("wall_seconds", "seconds_wall", wall_value));
    let mut file = ReportFile::new("it");
    file.upsert(report);
    file.save(path).unwrap();
}

fn bench_diff(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_bench_diff"))
        .args(args)
        .output()
        .unwrap()
}

#[test]
fn bench_diff_passes_identical_files() {
    let dir = temp_dir("diff_identical");
    let (old, new) = (dir.join("old.json"), dir.join("new.json"));
    write_file(&old, 1.5e-3, true, 1.0);
    write_file(&new, 1.5e-3, true, 1.0);
    let out = bench_diff(&[old.to_str().unwrap(), new.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 failure(s)"), "{stdout}");
}

#[test]
fn bench_diff_fails_on_deterministic_drift() {
    let dir = temp_dir("diff_drift");
    let (old, new) = (dir.join("old.json"), dir.join("new.json"));
    write_file(&old, 1.5e-3, true, 1.0);
    // One ULP of drift on a deterministic metric is a regression; the 100x wall
    // slowdown alongside it must stay advisory.
    write_file(&new, f64::from_bits(1.5e-3f64.to_bits() + 1), true, 100.0);
    let out = bench_diff(&[old.to_str().unwrap(), new.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("FAIL"), "{stdout}");
    assert!(stdout.contains("regenerate the baseline"), "{stdout}");
}

#[test]
fn bench_diff_wall_drift_warns_but_passes() {
    let dir = temp_dir("diff_wall");
    let (old, new) = (dir.join("old.json"), dir.join("new.json"));
    write_file(&old, 1.0, false, 1.0);
    write_file(&new, 2.0, false, 2.0); // 100 % slower on both wall metrics
    let out = bench_diff(&[old.to_str().unwrap(), new.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("2 warning(s)"), "{stdout}");
    // A generous tolerance silences the warnings.
    let out = bench_diff(&[
        old.to_str().unwrap(),
        new.to_str().unwrap(),
        "--wall-tolerance",
        "150",
    ]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 warning(s)"), "{stdout}");
}

#[test]
fn bench_diff_usage_errors_exit_2() {
    let dir = temp_dir("diff_usage");
    let present = dir.join("present.json");
    write_file(&present, 1.0, true, 1.0);
    let missing = dir.join("does_not_exist.json");
    let out = bench_diff(&[present.to_str().unwrap(), missing.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = bench_diff(&[present.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = bench_diff(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("--frobnicate"));
}

#[test]
fn bench_ingest_folds_criterion_lines_into_reports() {
    let dir = temp_dir("ingest");
    let jsonl = dir.join("crit.jsonl");
    let out_path = dir.join("BENCH_it.json");
    std::fs::write(
        &jsonl,
        concat!(
            "{\"id\": \"sharded_scaling/shards/4\", \"median_s\": 0.25, \"min_s\": 0.2, \"max_s\": 0.3}\n",
            "{\"id\": \"sharded_scaling/shards/8\", \"median_s\": 0.125, \"min_s\": 0.1, \"max_s\": 0.15}\n",
            "{\"id\": \"tss_conflict/lookup\", \"median_s\": 1e-6, \"min_s\": 1e-6, \"max_s\": 2e-6}\n",
            // A re-run appends a fresh line for an id seen before: last one wins.
            "{\"id\": \"sharded_scaling/shards/4\", \"median_s\": 0.5, \"min_s\": 0.4, \"max_s\": 0.6}\n",
        ),
    )
    .unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_bench_ingest"))
        .args([
            jsonl.to_str().unwrap(),
            out_path.to_str().unwrap(),
            "--group",
            "sharded_scaling",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let file = ReportFile::load(&out_path).unwrap();
    assert_eq!(file.area, "it");
    let report = file.report("criterion/sharded_scaling", "default").unwrap();
    assert_eq!(report.metrics.len(), 2);
    assert_eq!(report.metric("shards/4").unwrap().value, 0.5);
    assert_eq!(report.metric("shards/8").unwrap().value, 0.125);
    assert!(!report.metric("shards/4").unwrap().deterministic);
    // The filtered-out group must not have been ingested.
    assert!(file.report("criterion/tss_conflict", "default").is_none());
}
