//! Run metadata attached to every [`BenchReport`](super::BenchReport): enough context
//! to interpret a number months later (which commit produced it, how many cores the
//! box had), without anything nondeterministic like timestamps — the emitted files
//! must be byte-stable across re-runs of the same commit.

use std::process::Command;

use super::json::Json;

/// Metadata describing the machine and tree a report was produced on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunEnv {
    /// `git rev-parse HEAD` of the tree, or `"unknown"` outside a repository.
    pub git_sha: String,
    /// Whether the working tree had uncommitted changes (`git status --porcelain`
    /// non-empty). Numbers from a dirty tree cannot be attributed to the SHA alone.
    pub git_dirty: bool,
    /// Available hardware parallelism (`nproc`). Wall-clock metrics from a 1-core box
    /// say nothing about threaded speedups — this is the field that flags it.
    pub nproc: usize,
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
}

impl RunEnv {
    /// Capture the current environment. Git queries failing (no repo, no git binary)
    /// degrade to `"unknown"` / clean rather than erroring — reports must be emittable
    /// from an exported tarball too.
    pub fn capture() -> Self {
        let git = |args: &[&str]| -> Option<String> {
            let out = Command::new("git").args(args).output().ok()?;
            out.status
                .success()
                .then(|| String::from_utf8_lossy(&out.stdout).trim().to_string())
        };
        RunEnv {
            git_sha: git(&["rev-parse", "HEAD"]).unwrap_or_else(|| "unknown".into()),
            git_dirty: git(&["status", "--porcelain"]).is_some_and(|s| !s.is_empty()),
            nproc: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
        }
    }

    /// Serialize as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("git_sha".into(), Json::Str(self.git_sha.clone())),
            ("git_dirty".into(), Json::Bool(self.git_dirty)),
            ("nproc".into(), Json::Num(self.nproc as f64)),
            ("os".into(), Json::Str(self.os.clone())),
            ("arch".into(), Json::Str(self.arch.clone())),
        ])
    }

    /// Deserialize from a JSON object, tolerating missing fields (older files).
    pub fn from_json(v: &Json) -> Self {
        RunEnv {
            git_sha: v
                .get("git_sha")
                .and_then(Json::as_str)
                .unwrap_or("unknown")
                .to_string(),
            git_dirty: v.get("git_dirty").and_then(Json::as_bool).unwrap_or(false),
            nproc: v
                .get("nproc")
                .and_then(Json::as_num)
                .map(|n| n.max(0.0) as usize)
                .unwrap_or(0),
            os: v
                .get("os")
                .and_then(Json::as_str)
                .unwrap_or("unknown")
                .to_string(),
            arch: v
                .get("arch")
                .and_then(Json::as_str)
                .unwrap_or("unknown")
                .to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_and_roundtrip() {
        let env = RunEnv::capture();
        assert!(env.nproc >= 1);
        assert!(!env.os.is_empty());
        let back = RunEnv::from_json(&env.to_json());
        assert_eq!(back, env);
    }

    #[test]
    fn missing_fields_degrade_gracefully() {
        let env = RunEnv::from_json(&Json::Obj(vec![]));
        assert_eq!(env.git_sha, "unknown");
        assert!(!env.git_dirty);
        assert_eq!(env.nproc, 0);
    }
}
