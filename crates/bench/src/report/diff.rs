//! Comparison of two report files — the logic behind the `bench_diff` binary and the
//! CI regression gate.
//!
//! The rules encode the two-tier trust model of the reports:
//!
//! * **deterministic metrics** (cost-model units, mask/entry counts) are pure
//!   functions of the code: *any* bit-level drift against the baseline is a
//!   [`Severity::Fail`] — including improvements, because an unexplained improvement
//!   means either the baseline is stale or the model changed, and both must be
//!   acknowledged by regenerating the committed file;
//! * **wall-clock metrics** are machine- and load-dependent: drift beyond the
//!   configured band in the *worse* direction is a [`Severity::Warn`], never a
//!   failure (the CI container has 1 core and noisy neighbours).
//!
//! Reports present only in one file are informational: the baseline legitimately
//! carries full-length runs that CI's smoke configs never re-execute.

use super::{Metric, ReportFile};

/// Tunables for a diff.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffConfig {
    /// Allowed relative drift for wall-clock metrics, in percent, before a warning is
    /// raised (drift in the improving direction never warns).
    pub wall_tolerance_percent: f64,
}

impl Default for DiffConfig {
    fn default() -> Self {
        // Wall clocks on shared CI runners jitter easily by double-digit percents;
        // 25 % keeps the signal (a 2x regression still warns) without crying wolf.
        DiffConfig {
            wall_tolerance_percent: 25.0,
        }
    }
}

/// How serious one diff finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Context only (new metric, report not re-run).
    Info,
    /// Wall-clock drift beyond tolerance — advisory.
    Warn,
    /// Deterministic drift or a vanished deterministic metric — gates the build.
    Fail,
}

/// One finding of a diff.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// Severity of the finding.
    pub severity: Severity,
    /// `(name, params)` identity of the report involved.
    pub report: String,
    /// Metric name, when the finding concerns a single metric.
    pub metric: Option<String>,
    /// Human-readable explanation.
    pub message: String,
}

/// The outcome of diffing two report files.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffReport {
    /// All findings, in report order.
    pub entries: Vec<DiffEntry>,
    /// Number of metrics compared (matched by report identity and metric name).
    pub compared: usize,
}

impl DiffReport {
    /// Whether any finding gates the build.
    pub fn has_failures(&self) -> bool {
        self.entries.iter().any(|e| e.severity == Severity::Fail)
    }

    /// Count entries at a given severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.entries
            .iter()
            .filter(|e| e.severity == severity)
            .count()
    }

    /// Render the findings as text, one line per entry, worst first.
    pub fn render(&self) -> String {
        let mut entries: Vec<&DiffEntry> = self.entries.iter().collect();
        entries.sort_by_key(|e| std::cmp::Reverse(e.severity));
        let mut out = String::new();
        for e in entries {
            let tag = match e.severity {
                Severity::Fail => "FAIL",
                Severity::Warn => "warn",
                Severity::Info => "info",
            };
            match &e.metric {
                Some(m) => out.push_str(&format!("{tag}  {} :: {m}: {}\n", e.report, e.message)),
                None => out.push_str(&format!("{tag}  {}: {}\n", e.report, e.message)),
            }
        }
        out.push_str(&format!(
            "{} metric(s) compared, {} failure(s), {} warning(s)\n",
            self.compared,
            self.count(Severity::Fail),
            self.count(Severity::Warn),
        ));
        out
    }
}

fn direction(m: &Metric, old: f64, new: f64) -> &'static str {
    if (new > old) == m.higher_is_better {
        "improved"
    } else {
        "regressed"
    }
}

/// Compare `new` against the `old` baseline.
pub fn diff_files(old: &ReportFile, new: &ReportFile, cfg: &DiffConfig) -> DiffReport {
    let mut out = DiffReport::default();
    for old_report in &old.reports {
        let ident = format!("{} [{}]", old_report.name, old_report.params);
        let Some(new_report) = new.report(&old_report.name, &old_report.params) else {
            out.entries.push(DiffEntry {
                severity: Severity::Info,
                report: ident,
                metric: None,
                message: "not present in the new file (not re-run)".into(),
            });
            continue;
        };
        for old_metric in &old_report.metrics {
            let Some(new_metric) = new_report.metric(&old_metric.name) else {
                out.entries.push(DiffEntry {
                    severity: if old_metric.deterministic {
                        Severity::Fail
                    } else {
                        Severity::Warn
                    },
                    report: ident.clone(),
                    metric: Some(old_metric.name.clone()),
                    message: "metric vanished from the new report".into(),
                });
                continue;
            };
            out.compared += 1;
            let (o, n) = (old_metric.value, new_metric.value);
            if old_metric.deterministic {
                // Strict bit equality: the value is a pure function of the code, so
                // any drift means the code's observable behaviour changed.
                if o.to_bits() != n.to_bits() {
                    out.entries.push(DiffEntry {
                        severity: Severity::Fail,
                        report: ident.clone(),
                        metric: Some(old_metric.name.clone()),
                        message: format!(
                            "deterministic metric {} ({}): {o} -> {n} \
                             (strict equality required; regenerate the baseline if \
                             this change is intended)",
                            direction(old_metric, o, n),
                            old_metric.unit,
                        ),
                    });
                }
            } else {
                let denom = o.abs().max(f64::MIN_POSITIVE);
                let drift_percent = (n - o) / denom * 100.0;
                let worse = (n > o) != old_metric.higher_is_better && n != o;
                if worse && drift_percent.abs() > cfg.wall_tolerance_percent {
                    out.entries.push(DiffEntry {
                        severity: Severity::Warn,
                        report: ident.clone(),
                        metric: Some(old_metric.name.clone()),
                        message: format!(
                            "wall-clock metric regressed {:.1} % ({}: {o} -> {n}, \
                             tolerance {} %)",
                            drift_percent.abs(),
                            old_metric.unit,
                            cfg.wall_tolerance_percent,
                        ),
                    });
                }
            }
        }
        for new_metric in &new_report.metrics {
            if old_report.metric(&new_metric.name).is_none() {
                out.entries.push(DiffEntry {
                    severity: Severity::Info,
                    report: ident.clone(),
                    metric: Some(new_metric.name.clone()),
                    message: format!("new metric ({} {})", new_metric.value, new_metric.unit),
                });
            }
        }
    }
    for new_report in &new.reports {
        if old.report(&new_report.name, &new_report.params).is_none() {
            out.entries.push(DiffEntry {
                severity: Severity::Info,
                report: format!("{} [{}]", new_report.name, new_report.params),
                metric: None,
                message: "new report (no baseline yet)".into(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::BenchReport;

    fn file_with(metrics: Vec<Metric>) -> ReportFile {
        let mut report = BenchReport::new("fig", "duration=35");
        for m in metrics {
            report.push(m);
        }
        let mut file = ReportFile::new("test");
        file.upsert(report);
        file
    }

    #[test]
    fn identical_files_pass() {
        let f = file_with(vec![
            Metric::deterministic("cost", "cost_seconds", 1.5e-3),
            Metric::wall("wall", "seconds_wall", 2.0),
        ]);
        let d = diff_files(&f, &f.clone(), &DiffConfig::default());
        assert!(!d.has_failures());
        assert_eq!(d.compared, 2);
        assert_eq!(d.count(Severity::Warn), 0);
    }

    #[test]
    fn deterministic_drift_fails_in_both_directions() {
        let old = file_with(vec![
            Metric::deterministic("gbps", "gbps", 3.0).higher_is_better()
        ]);
        for new_value in [2.9, 3.1] {
            let new = file_with(vec![
                Metric::deterministic("gbps", "gbps", new_value).higher_is_better()
            ]);
            let d = diff_files(&old, &new, &DiffConfig::default());
            assert!(d.has_failures(), "drift to {new_value} must fail");
        }
    }

    #[test]
    fn deterministic_ulp_drift_fails() {
        let old = file_with(vec![Metric::deterministic("c", "cost_seconds", 1.0)]);
        let new = file_with(vec![Metric::deterministic(
            "c",
            "cost_seconds",
            f64::from_bits(1.0f64.to_bits() + 1),
        )]);
        assert!(diff_files(&old, &new, &DiffConfig::default()).has_failures());
    }

    #[test]
    fn wall_drift_warns_only_beyond_tolerance_and_only_when_worse() {
        let old = file_with(vec![Metric::wall("t", "seconds_wall", 1.0)]);
        let cases = [
            (1.1, 0), // 10 % slower: inside the 25 % band
            (1.5, 1), // 50 % slower: warn
            (0.5, 0), // 50 % faster: improvement never warns (lower is better)
        ];
        for (new_value, warns) in cases {
            let new = file_with(vec![Metric::wall("t", "seconds_wall", new_value)]);
            let d = diff_files(&old, &new, &DiffConfig::default());
            assert!(!d.has_failures(), "wall drift must never fail");
            assert_eq!(d.count(Severity::Warn), warns, "value {new_value}");
        }
    }

    #[test]
    fn vanished_deterministic_metric_fails() {
        let old = file_with(vec![
            Metric::deterministic("kept", "masks", 1.0),
            Metric::deterministic("gone", "masks", 2.0),
        ]);
        let new = file_with(vec![Metric::deterministic("kept", "masks", 1.0)]);
        let d = diff_files(&old, &new, &DiffConfig::default());
        assert!(d.has_failures());
    }

    #[test]
    fn unmatched_reports_are_informational() {
        let old = file_with(vec![Metric::deterministic("m", "masks", 1.0)]);
        let mut new = ReportFile::new("test");
        new.upsert(BenchReport::new("other_fig", "default"));
        let d = diff_files(&old, &new, &DiffConfig::default());
        assert!(!d.has_failures());
        assert_eq!(d.count(Severity::Info), 2); // not re-run + new report
        assert_eq!(d.compared, 0);
    }

    #[test]
    fn render_mentions_failures_first() {
        let old = file_with(vec![
            Metric::deterministic("c", "cost_seconds", 1.0),
            Metric::wall("t", "seconds_wall", 1.0),
        ]);
        let new = file_with(vec![
            Metric::deterministic("c", "cost_seconds", 2.0),
            Metric::wall("t", "seconds_wall", 10.0),
        ]);
        let d = diff_files(&old, &new, &DiffConfig::default());
        let text = d.render();
        assert!(text.starts_with("FAIL"));
        assert!(text.contains("warn"));
        assert!(text.contains("1 failure(s), 1 warning(s)"));
    }
}
