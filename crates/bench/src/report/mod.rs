//! Machine-readable benchmark reports: the `BENCH_<area>.json` files at the repo root.
//!
//! Every figure binary (via the shared `--json <path>` flag, see
//! [`FigArgs`](crate::FigArgs)) and every criterion group (via the `TSE_BENCH_OUT`
//! hook of the vendored criterion stub, folded in by `bench_ingest`) emits its
//! headline numbers through this module, so the repo's speed story lives in diffable,
//! regression-gated files instead of commit messages.
//!
//! The model is deliberately small:
//!
//! * a [`Metric`] is one named number with a unit, a direction
//!   (`higher_is_better`), and — the load-bearing bit — a `deterministic` flag.
//!   Deterministic metrics come from the simulator's calibrated cost model
//!   (`tse-switch::cost`): same commit, same flags → same bits, on any machine, which
//!   is what lets CI gate on them from a 1-core container. Wall-clock metrics
//!   (`*_wall` units) are machine-dependent and only ever warn.
//! * a [`BenchReport`] is one run of one producer (a figure binary or a criterion
//!   group) under one parameterisation, with the [`RunEnv`] it ran in;
//! * a [`ReportFile`] is one `BENCH_<area>.json`: a set of reports keyed by
//!   `(name, params)`. Re-running a producer replaces its previous report in place
//!   (byte-identically so, when the deterministic metrics are unchanged and the tree
//!   is at the same commit).
//!
//! `report::diff` compares two files: strict bit-equality for deterministic metrics
//! (any drift fails), a configurable percentage band for wall-clock ones (drift
//! warns). See the README's "Benchmark reports & regression gate" section for the
//! workflow.

pub mod diff;
pub mod env;
pub mod json;

use std::path::Path;

pub use diff::{diff_files, DiffConfig, DiffEntry, DiffReport, Severity};
pub use env::RunEnv;
pub use json::{Json, JsonError};

/// Current report-file format version, bumped on incompatible layout changes.
pub const FORMAT_VERSION: f64 = 1.0;

/// One measured number.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Metric name, unique within its report (e.g. `"pinned/none/victim_a_gbps"`).
    pub name: String,
    /// Unit label. Deterministic units in use: `gbps`, `pps`, `masks`, `entries`,
    /// `packets`, `percent`, `cost_seconds` (summed `tse-switch::cost` model time).
    /// Wall-clock units carry a `_wall` suffix: `seconds_wall`, `mpps_wall`,
    /// `installs_per_sec_wall`.
    pub unit: String,
    /// The value. Always finite — constructors reject NaN/inf.
    pub value: f64,
    /// Direction of improvement: `true` if larger is better (throughput), `false` if
    /// smaller is better (cost, masks, latency).
    pub higher_is_better: bool,
    /// Whether the value is a pure function of the code and flags (cost-model units,
    /// mask counts) or depends on the machine and the moment (wall clock). The
    /// regression gate is strict on the former and advisory on the latter.
    pub deterministic: bool,
}

impl Metric {
    fn new(name: &str, unit: &str, value: f64, deterministic: bool) -> Self {
        assert!(
            value.is_finite(),
            "metric {name:?} has non-finite value {value}; reports cannot represent it"
        );
        Metric {
            name: name.to_string(),
            unit: unit.to_string(),
            value,
            higher_is_better: false,
            deterministic,
        }
    }

    /// A deterministic (cost-model / counter) metric, lower-is-better by default.
    pub fn deterministic(name: &str, unit: &str, value: f64) -> Self {
        Metric::new(name, unit, value, true)
    }

    /// A wall-clock metric, lower-is-better by default.
    pub fn wall(name: &str, unit: &str, value: f64) -> Self {
        Metric::new(name, unit, value, false)
    }

    /// Mark this metric as higher-is-better (throughputs, delivered Gbps).
    pub fn higher_is_better(mut self) -> Self {
        self.higher_is_better = true;
        self
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("unit".into(), Json::Str(self.unit.clone())),
            ("value".into(), Json::Num(self.value)),
            ("higher_is_better".into(), Json::Bool(self.higher_is_better)),
            ("deterministic".into(), Json::Bool(self.deterministic)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let field = |k: &str| {
            v.get(k).ok_or(JsonError {
                message: format!("metric is missing {k:?}"),
                offset: 0,
            })
        };
        let num = |k: &str| {
            field(k)?.as_num().ok_or(JsonError {
                message: format!("metric {k:?} is not a number"),
                offset: 0,
            })
        };
        let text = |k: &str| {
            Ok::<_, JsonError>(
                field(k)?
                    .as_str()
                    .ok_or(JsonError {
                        message: format!("metric {k:?} is not a string"),
                        offset: 0,
                    })?
                    .to_string(),
            )
        };
        Ok(Metric {
            name: text("name")?,
            unit: text("unit")?,
            value: num("value")?,
            higher_is_better: field("higher_is_better")?.as_bool().unwrap_or(false),
            deterministic: field("deterministic")?.as_bool().unwrap_or(false),
        })
    }
}

/// One producer's report: a named, parameterised set of metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Producer name — a figure binary (`"fig_shard_blast_radius"`) or an ingested
    /// criterion group (`"criterion/sharded_scaling"`).
    pub name: String,
    /// Canonical parameter string (e.g. `"duration=70,shards=4,parallel=1"`, or
    /// `"default"` for parameterless producers). Together with `name` it identifies
    /// the report in its file: CI smoke runs and full-length runs of the same binary
    /// coexist as separate entries, each diffed against its own baseline.
    pub params: String,
    /// The environment the run happened in.
    pub env: RunEnv,
    /// The metrics, in the producer's emission order.
    pub metrics: Vec<Metric>,
}

impl BenchReport {
    /// Start an empty report for the current environment.
    pub fn new(name: &str, params: &str) -> Self {
        BenchReport {
            name: name.to_string(),
            params: params.to_string(),
            env: RunEnv::capture(),
            metrics: Vec::new(),
        }
    }

    /// Append a metric (panics on a duplicate name — each name must identify one
    /// number for diffing to make sense).
    pub fn push(&mut self, metric: Metric) {
        assert!(
            self.metrics.iter().all(|m| m.name != metric.name),
            "duplicate metric {:?} in report {:?}",
            metric.name,
            self.name
        );
        self.metrics.push(metric);
    }

    /// Look up a metric by name.
    pub fn metric(&self, name: &str) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.name == name)
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("params".into(), Json::Str(self.params.clone())),
            ("env".into(), self.env.to_json()),
            (
                "metrics".into(),
                Json::Arr(self.metrics.iter().map(Metric::to_json).collect()),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let text = |k: &str| {
            v.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or(JsonError {
                    message: format!("report is missing string {k:?}"),
                    offset: 0,
                })
        };
        let metrics = v
            .get("metrics")
            .and_then(Json::as_arr)
            .ok_or(JsonError {
                message: "report is missing \"metrics\" array".into(),
                offset: 0,
            })?
            .iter()
            .map(Metric::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BenchReport {
            name: text("name")?,
            params: text("params")?,
            env: v
                .get("env")
                .map(RunEnv::from_json)
                .unwrap_or_else(|| RunEnv::from_json(&Json::Obj(vec![]))),
            metrics,
        })
    }
}

/// One `BENCH_<area>.json` file: an area label plus a set of reports.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportFile {
    /// Area label (`"datapath"`, `"classifier"`, `"mitigation"`, `"sharding"`),
    /// derived from the `BENCH_<area>.json` filename on first write.
    pub area: String,
    /// The reports, kept sorted by `(name, params)` so file layout is independent of
    /// the order producers ran in.
    pub reports: Vec<BenchReport>,
}

impl ReportFile {
    /// An empty file for `area`.
    pub fn new(area: &str) -> Self {
        ReportFile {
            area: area.to_string(),
            reports: Vec::new(),
        }
    }

    /// Derive the area label from a report path: `BENCH_sharding.json` → `sharding`;
    /// any other filename is its own stem.
    pub fn area_of(path: &Path) -> String {
        let stem = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        stem.strip_prefix("BENCH_").unwrap_or(&stem).to_string()
    }

    /// Load `path`, or return an empty file (with the area derived from the filename)
    /// if it does not exist yet. Parse or I/O errors other than "not found" are
    /// returned — a corrupt baseline must not be silently clobbered.
    pub fn load_or_empty(path: &Path) -> Result<Self, String> {
        match std::fs::read_to_string(path) {
            Ok(text) => Self::from_json_text(&text)
                .map_err(|e| format!("{}: invalid report file: {e}", path.display())),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Ok(ReportFile::new(&Self::area_of(path)))
            }
            Err(e) => Err(format!("{}: {e}", path.display())),
        }
    }

    /// Load `path`, erroring if it does not exist (the `bench_diff` entry point —
    /// diffing against a missing baseline is a setup error, not an empty diff).
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_json_text(&text)
            .map_err(|e| format!("{}: invalid report file: {e}", path.display()))
    }

    /// Parse a report file from its JSON text.
    pub fn from_json_text(text: &str) -> Result<Self, JsonError> {
        let v = json::parse(text)?;
        let area = v
            .get("area")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string();
        let reports = v
            .get("reports")
            .and_then(Json::as_arr)
            .ok_or(JsonError {
                message: "report file is missing \"reports\" array".into(),
                offset: 0,
            })?
            .iter()
            .map(BenchReport::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ReportFile { area, reports })
    }

    /// Serialize to the canonical byte representation (sorted reports, deterministic
    /// writer, trailing newline).
    pub fn to_json_text(&self) -> String {
        let mut sorted: Vec<&BenchReport> = self.reports.iter().collect();
        sorted.sort_by(|a, b| (&a.name, &a.params).cmp(&(&b.name, &b.params)));
        let v = Json::Obj(vec![
            ("version".into(), Json::Num(FORMAT_VERSION)),
            ("area".into(), Json::Str(self.area.clone())),
            (
                "reports".into(),
                Json::Arr(sorted.iter().map(|r| r.to_json()).collect()),
            ),
        ]);
        json::write(&v).expect("metric constructors reject non-finite values")
    }

    /// Insert `report`, replacing any existing report with the same `(name, params)`.
    pub fn upsert(&mut self, report: BenchReport) {
        match self
            .reports
            .iter_mut()
            .find(|r| r.name == report.name && r.params == report.params)
        {
            Some(slot) => *slot = report,
            None => self.reports.push(report),
        }
    }

    /// Look up a report by identity.
    pub fn report(&self, name: &str, params: &str) -> Option<&BenchReport> {
        self.reports
            .iter()
            .find(|r| r.name == name && r.params == params)
    }

    /// Write the file to `path` (canonical bytes).
    pub fn save(&self, path: &Path) -> Result<(), String> {
        std::fs::write(path, self.to_json_text()).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// Load-or-create the file at `path`, upsert `report` into it, and write it back —
/// the append operation behind every producer's `--json` flag.
pub fn append_report(path: &Path, report: BenchReport) -> Result<(), String> {
    let mut file = ReportFile::load_or_empty(path)?;
    file.upsert(report);
    file.save(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report(name: &str, params: &str) -> BenchReport {
        let mut r = BenchReport::new(name, params);
        r.push(Metric::deterministic(
            "total_cost_seconds",
            "cost_seconds",
            1.25e-3,
        ));
        r.push(Metric::deterministic("victim_gbps", "gbps", 3.75).higher_is_better());
        r.push(Metric::wall("wall_seconds", "seconds_wall", 0.42));
        r
    }

    #[test]
    fn report_file_roundtrips() {
        let mut file = ReportFile::new("sharding");
        file.upsert(sample_report("fig_a", "duration=70"));
        file.upsert(sample_report("fig_b", "default"));
        let text = file.to_json_text();
        let back = ReportFile::from_json_text(&text).unwrap();
        assert_eq!(back.area, "sharding");
        assert_eq!(back.reports.len(), 2);
        let a = back.report("fig_a", "duration=70").unwrap();
        assert_eq!(a.metric("victim_gbps").unwrap().value, 3.75);
        assert!(a.metric("victim_gbps").unwrap().higher_is_better);
        assert!(a.metric("total_cost_seconds").unwrap().deterministic);
        assert!(!a.metric("wall_seconds").unwrap().deterministic);
    }

    #[test]
    fn serialization_is_order_independent() {
        let mut ab = ReportFile::new("x");
        ab.upsert(sample_report("a", "p"));
        ab.upsert(sample_report("b", "p"));
        let mut ba = ReportFile::new("x");
        ba.upsert(sample_report("b", "p"));
        ba.upsert(sample_report("a", "p"));
        assert_eq!(ab.to_json_text(), ba.to_json_text());
    }

    #[test]
    fn upsert_replaces_matching_identity_only() {
        let mut file = ReportFile::new("x");
        file.upsert(sample_report("fig", "duration=10"));
        file.upsert(sample_report("fig", "duration=70"));
        assert_eq!(
            file.reports.len(),
            2,
            "different params are distinct reports"
        );
        let mut replacement = sample_report("fig", "duration=10");
        replacement.metrics[0].value = 9.0;
        file.upsert(replacement);
        assert_eq!(file.reports.len(), 2);
        assert_eq!(
            file.report("fig", "duration=10").unwrap().metrics[0].value,
            9.0
        );
    }

    #[test]
    #[should_panic(expected = "duplicate metric")]
    fn duplicate_metric_names_are_rejected() {
        let mut r = BenchReport::new("r", "default");
        r.push(Metric::deterministic("m", "masks", 1.0));
        r.push(Metric::deterministic("m", "masks", 2.0));
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_metric_values_are_rejected() {
        Metric::deterministic("m", "gbps", f64::NAN);
    }

    #[test]
    fn area_is_derived_from_filename() {
        assert_eq!(
            ReportFile::area_of(Path::new("/repo/BENCH_datapath.json")),
            "datapath"
        );
        assert_eq!(ReportFile::area_of(Path::new("custom.json")), "custom");
    }

    #[test]
    fn append_report_merges_on_disk() {
        let dir = std::env::temp_dir().join("tse_report_test_append");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_unit.json");
        let _ = std::fs::remove_file(&path);
        append_report(&path, sample_report("first", "default")).unwrap();
        append_report(&path, sample_report("second", "default")).unwrap();
        // Re-appending an identical report must not change the bytes (determinism).
        let before = std::fs::read_to_string(&path).unwrap();
        let mut again = sample_report("first", "default");
        again.metrics.retain(|m| m.deterministic); // drop the wall metric
        again.push(Metric::wall("wall_seconds", "seconds_wall", 0.42));
        append_report(&path, again).unwrap();
        let after = std::fs::read_to_string(&path).unwrap();
        assert_eq!(before, after);
        let file = ReportFile::load(&path).unwrap();
        assert_eq!(file.area, "unit");
        assert_eq!(file.reports.len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_files_error_instead_of_clobbering() {
        let dir = std::env::temp_dir().join("tse_report_test_corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_bad.json");
        std::fs::write(&path, "{ not json").unwrap();
        assert!(ReportFile::load_or_empty(&path).is_err());
        assert!(append_report(&path, sample_report("r", "default")).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
