//! A minimal, dependency-free JSON value model with a deterministic writer and a
//! strict parser.
//!
//! crates.io is unreachable in the build environment, so `serde`/`serde_json` are not
//! an option — the report files are written and read by this module instead. Two
//! properties matter more here than raw generality:
//!
//! * **byte determinism** — [`write()`] renders a given [`Json`] value to exactly one
//!   byte sequence (objects keep insertion order, numbers use Rust's shortest
//!   round-trip formatting, indentation is fixed), so re-emitting an unchanged report
//!   reproduces the committed file byte for byte;
//! * **f64 round-tripping** — every finite `f64` survives `write` → [`parse`]
//!   bit-exactly (Rust's `Display` prints the shortest decimal that reparses to the
//!   same bits), which is what lets `bench_diff` demand *strict equality* for
//!   deterministic cost-model metrics. Non-finite numbers (NaN/±inf) have no JSON
//!   representation and are rejected at write time.

use std::fmt;

/// A JSON value. Object members keep their insertion order (a `Vec`, not a map), so
/// writing is deterministic and files diff cleanly.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number. Always carried as `f64`; integers are exact up to 2^53, far beyond
    /// any mask/entry/packet count the reports record.
    Num(f64),
    /// A string (arbitrary Rust string; escaped on write).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered list of `(key, value)` members.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Look up a member of an object by key (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// An error from [`write()`] or [`parse`], with a byte offset for parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input where the problem was found (0 for write errors).
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at byte {})", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(message: impl Into<String>, offset: usize) -> Result<T, JsonError> {
    Err(JsonError {
        message: message.into(),
        offset,
    })
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Render `value` as deterministic pretty-printed JSON (2-space indent, `\n` line
/// ends, trailing newline). Containers whose children are all scalars are inlined on
/// one line — a metric record stays a single greppable line. Fails on non-finite
/// numbers, which JSON cannot represent.
pub fn write(value: &Json) -> Result<String, JsonError> {
    let mut out = String::new();
    write_value(value, 0, &mut out)?;
    out.push('\n');
    Ok(out)
}

fn is_scalar(v: &Json) -> bool {
    matches!(v, Json::Null | Json::Bool(_) | Json::Num(_) | Json::Str(_))
}

fn write_inline(v: &Json) -> bool {
    match v {
        Json::Arr(items) => items.iter().all(is_scalar),
        Json::Obj(members) => members.iter().all(|(_, v)| is_scalar(v)),
        _ => true,
    }
}

fn write_value(value: &Json, indent: usize, out: &mut String) -> Result<(), JsonError> {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => {
            if !n.is_finite() {
                return err(format!("cannot write non-finite number {n}"), 0);
            }
            out.push_str(&format_number(*n));
        }
        Json::Str(s) => write_string(s, out),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
            } else if write_inline(value) {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_value(item, indent, out)?;
                }
                out.push(']');
            } else {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(indent + 1, out);
                    write_value(item, indent + 1, out)?;
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                pad(indent, out);
                out.push(']');
            }
        }
        Json::Obj(members) => {
            if members.is_empty() {
                out.push_str("{}");
            } else if write_inline(value) {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_string(k, out);
                    out.push_str(": ");
                    write_value(v, indent, out)?;
                }
                out.push('}');
            } else {
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    pad(indent + 1, out);
                    write_string(k, out);
                    out.push_str(": ");
                    write_value(v, indent + 1, out)?;
                    out.push_str(if i + 1 < members.len() { ",\n" } else { "\n" });
                }
                pad(indent, out);
                out.push('}');
            }
        }
    }
    Ok(())
}

fn pad(indent: usize, out: &mut String) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Format a finite `f64` as its shortest round-tripping decimal. Rust's `Display`
/// guarantees `format!("{}", x).parse::<f64>() == x` bit for bit for finite values;
/// `-0.0` renders as `-0` and reparses to `-0.0`.
fn format_number(n: f64) -> String {
    format!("{n}")
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            // Non-ASCII is written as raw UTF-8 (valid JSON), so no surrogate-pair
            // encoding is needed on the write side.
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Nesting ceiling for the recursive-descent parser — the report format is 4 levels
/// deep, so 128 is pure DoS headroom, not a functional limit.
const MAX_DEPTH: usize = 128;

/// Parse a JSON document. Strict: exactly one value, standard JSON grammar (no
/// comments, no trailing commas, no NaN/Infinity literals).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return err("trailing characters after JSON value", p.pos);
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!("expected {:?}", b as char), self.pos)
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            err(format!("invalid literal, expected {word:?}"), self.pos)
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return err("maximum nesting depth exceeded", self.pos);
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => err(format!("unexpected character {:?}", c as char), self.pos),
            None => err("unexpected end of input", self.pos),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return err("expected ',' or ']' in array", self.pos),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return err("expected ',' or '}' in object", self.pos),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return err("unterminated string", start),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: a \uXXXX low surrogate must follow.
                                if self.peek() != Some(b'\\') {
                                    return err("unpaired surrogate", start);
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return err("unpaired surrogate", start);
                                }
                                self.pos += 1;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return err("invalid low surrogate", start);
                                }
                                let cp = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(cp)
                                    .ok_or(())
                                    .or_else(|_| err("invalid surrogate pair", start))?
                            } else if (0xDC00..0xE000).contains(&unit) {
                                return err("unpaired low surrogate", start);
                            } else {
                                char::from_u32(unit)
                                    .ok_or(())
                                    .or_else(|_| err("invalid \\u escape", start))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return err("invalid escape sequence", self.pos),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return err("unescaped control character in string", start),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so boundaries are
                    // valid by construction).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| JsonError {
                            message: "invalid UTF-8".into(),
                            offset: self.pos,
                        })?;
                    let c = rest.chars().next().expect("peeked a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let start = self.pos;
        if self.bytes.len() < start + 4 {
            return err("truncated \\u escape", start);
        }
        let hex = std::str::from_utf8(&self.bytes[start..start + 4])
            .ok()
            .and_then(|s| u32::from_str_radix(s, 16).ok());
        match hex {
            Some(v) => {
                self.pos += 4;
                Ok(v)
            }
            None => err("invalid \\u escape digits", start),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: one or more digits, no leading zeros before another digit.
        let int_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == int_start {
            return err("expected digits in number", self.pos);
        }
        if self.bytes[int_start] == b'0' && self.pos > int_start + 1 {
            return err("leading zero in number", int_start);
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return err("expected digits after decimal point", self.pos);
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return err("expected digits in exponent", self.pos);
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            // Overflowing literals parse to ±inf; JSON has no representation for the
            // reports to round-trip, so reject rather than silently saturate.
            Ok(_) => err("number out of f64 range", start),
            Err(e) => err(format!("invalid number: {e}"), start),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) -> Json {
        parse(&write(v).unwrap()).unwrap()
    }

    #[test]
    fn scalars_roundtrip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Num(0.0),
            Json::Num(-0.0),
            Json::Num(1.17e-6),
            Json::Num(f64::MAX),
            Json::Num(f64::MIN_POSITIVE),
            Json::Str(String::new()),
            Json::Str("hello \"world\"\n\t\\ \u{1F980} \u{7}".into()),
        ] {
            assert_eq!(roundtrip(&v), v, "roundtrip failed for {v:?}");
        }
        // -0.0 must keep its sign bit through the trip.
        let Json::Num(n) = roundtrip(&Json::Num(-0.0)) else {
            panic!()
        };
        assert_eq!(n.to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn containers_roundtrip() {
        let v = Json::Obj(vec![
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
            (
                "nested".into(),
                Json::Arr(vec![
                    Json::Obj(vec![("k".into(), Json::Num(1.5))]),
                    Json::Arr(vec![Json::Null, Json::Bool(false)]),
                ]),
            ),
        ]);
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn object_member_order_is_preserved() {
        let v = Json::Obj(vec![
            ("z".into(), Json::Num(1.0)),
            ("a".into(), Json::Num(2.0)),
        ]);
        let text = write(&v).unwrap();
        assert!(text.find("\"z\"").unwrap() < text.find("\"a\"").unwrap());
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn write_is_deterministic() {
        let v = Json::Obj(vec![(
            "metrics".into(),
            Json::Arr(vec![Json::Obj(vec![
                ("name".into(), Json::Str("x".into())),
                ("value".into(), Json::Num(0.1 + 0.2)),
            ])]),
        )]);
        assert_eq!(write(&v).unwrap(), write(&v).unwrap());
    }

    #[test]
    fn non_finite_numbers_are_rejected_on_write() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(write(&Json::Num(bad)).is_err(), "{bad} must not serialize");
        }
    }

    #[test]
    fn parser_rejects_nan_literals_and_overflow() {
        assert!(parse("NaN").is_err());
        assert!(parse("Infinity").is_err());
        assert!(parse("1e999").is_err());
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "01",
            "1.",
            ".5",
            "1e",
            "\"\\x\"",
            "\"\\u12\"",
            "\"\\ud800\"",
            "\"unterminated",
            "tru",
            "[1] []",
            "\"a\" extra",
            "{\"a\": 1,}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn parser_accepts_unicode_escapes_and_surrogate_pairs() {
        assert_eq!(
            parse("\"\\u00e9\\uD83E\\uDD80\"").unwrap(),
            Json::Str("é\u{1F980}".into())
        );
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn f64_bit_exactness_over_interesting_values() {
        for bits in [
            0x0000_0000_0000_0001u64, // smallest subnormal
            0x000F_FFFF_FFFF_FFFF,    // largest subnormal
            0x3FB9_9999_9999_999A,    // 0.1
            0x400921FB54442D18,       // pi
            0x7FEF_FFFF_FFFF_FFFF,    // f64::MAX
        ] {
            let v = f64::from_bits(bits);
            let Json::Num(back) = roundtrip(&Json::Num(v)) else {
                panic!()
            };
            assert_eq!(back.to_bits(), bits, "{v} did not round-trip");
        }
    }

    #[test]
    fn accessors() {
        let v = parse("{\"a\": 1, \"b\": \"s\", \"c\": true, \"d\": [2]}").unwrap();
        assert_eq!(v.get("a").and_then(Json::as_num), Some(1.0));
        assert_eq!(v.get("b").and_then(Json::as_str), Some("s"));
        assert_eq!(v.get("c").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("d").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert!(v.get("missing").is_none());
        assert!(v.get("a").unwrap().get("x").is_none());
    }
}
