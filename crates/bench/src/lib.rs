//! # tse-bench
//!
//! The benchmark harness of the reproduction. It has three halves:
//!
//! * **figure binaries** (`src/bin/`): one binary per table/figure of the paper's
//!   evaluation, each printing the same rows/series the paper reports (see DESIGN.md §5
//!   for the experiment index and EXPERIMENTS.md for recorded outputs);
//! * **criterion micro-benchmarks** (`benches/`): wall-clock measurements of the TSS
//!   lookup as the mask count grows, the megaflow-generation strategies, the baseline
//!   classifiers, and the sharded-datapath scaling curve;
//! * **the [`report`] subsystem**: the machine-readable `BENCH_<area>.json` files at
//!   the repo root that both halves emit their headline numbers into — figure binaries
//!   through the shared `--json <path>` flag ([`FigArgs::emit`]), criterion groups
//!   through the stub's `TSE_BENCH_OUT` hook folded in by the `bench_ingest` binary —
//!   and the `bench_diff` regression gate that compares two such files (strict
//!   equality for deterministic cost-model metrics, a tolerance band for wall-clock).
//!   See the README's "Benchmark reports & regression gate" section.
//!
//! This library crate hosts the report model and small shared helpers for the
//! binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;

use std::path::PathBuf;

use tse_switch::exec::{
    PersistentPoolExecutor, SequentialExecutor, ShardExecutor, ThreadPoolExecutor,
};

use report::{BenchReport, Metric};

/// Parse an optional `--duration <seconds>` / `--duration=<seconds>` CLI flag,
/// falling back to `default`. Shorthand over [`fig_args_duration`] for call sites
/// that only need the horizon; binaries that also emit reports use the full
/// [`FigArgs`] form.
pub fn duration_arg(default: f64) -> f64 {
    fig_args_duration(default).duration
}

/// Parsed command line of a figure binary (see [`fig_args`], [`fig_args_duration`]
/// and [`fig_args_static`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FigArgs {
    /// Experiment horizon, seconds (`--duration`); `0.0` for binaries with no time
    /// axis ([`fig_args_static`]).
    pub duration: f64,
    /// Number of datapath shards / PMD threads to model (`--shards`), or `None` for
    /// binaries without a sharded datapath — there is no sentinel shard count.
    pub shards: Option<usize>,
    /// Worker threads driving the per-shard fan-out (`--parallel <n>` for the
    /// long-lived persistent pool, `--parallel scoped:<n>` for per-batch scoped
    /// threads; 1 = sequential).
    pub threads: usize,
    /// `true` when `--parallel scoped:<n>` asked for the per-batch scoped-thread pool
    /// instead of the default persistent pool.
    pub scoped: bool,
    /// Where to append this run's benchmark report (`--json <path>`), typically one
    /// of the repo-root `BENCH_<area>.json` files; `None` disables emission.
    pub json: Option<PathBuf>,
    /// Tenant count of a fleet-scale binary (`--tenants`), or `None` for binaries
    /// without a tenant axis.
    pub tenants: Option<usize>,
    /// Per-tenant SLO floor in Gbps (`--slo-gbps`), or `None` for binaries without
    /// SLO tracking.
    pub slo_gbps: Option<f64>,
}

impl FigArgs {
    /// The shard count of a sharded figure binary. Panics if the binary was not
    /// parsed with [`fig_args`] — a non-sharded binary has no shard count to ask for.
    pub fn shard_count(&self) -> usize {
        self.shards
            .expect("this binary has no --shards flag; use fig_args(..) to enable it")
    }

    /// The shard executor the flags select: a [`PersistentPoolExecutor`] when
    /// `--parallel <n>` asked for more than one thread (long-lived parked workers,
    /// the PMD-thread model), a [`ThreadPoolExecutor`] for the explicit
    /// `--parallel scoped:<n>` form (per-batch scoped threads, kept reachable for
    /// comparison runs), the default [`SequentialExecutor`] otherwise. Timelines are
    /// identical in all three cases; only wall-clock time changes.
    pub fn executor(&self) -> Box<dyn ShardExecutor> {
        if self.threads > 1 {
            if self.scoped {
                Box::new(ThreadPoolExecutor::new(self.threads))
            } else {
                Box::new(PersistentPoolExecutor::new(self.threads))
            }
        } else {
            Box::new(SequentialExecutor)
        }
    }

    /// `"sequential"`, `"persistent-pool(N)"` or `"thread-pool(N)"` — for experiment
    /// headers.
    pub fn executor_label(&self) -> String {
        if self.threads > 1 {
            if self.scoped {
                format!("thread-pool({})", self.threads)
            } else {
                format!("persistent-pool({})", self.threads)
            }
        } else {
            "sequential".to_string()
        }
    }

    /// Canonical parameter string identifying this run's configuration inside a
    /// report file: `"duration=35,shards=4,parallel=2"`, with absent axes omitted and
    /// `"default"` when the binary has no parameters at all. Reports from different
    /// configurations (a CI smoke run vs. a full-length baseline run) coexist in the
    /// same file under distinct identities.
    pub fn params(&self) -> String {
        let mut parts = Vec::new();
        if self.duration > 0.0 {
            parts.push(format!("duration={}", self.duration));
        }
        if let Some(shards) = self.shards {
            parts.push(format!("shards={shards}"));
            if self.scoped {
                parts.push(format!("parallel=scoped:{}", self.threads));
            } else {
                parts.push(format!("parallel={}", self.threads));
            }
        }
        if let Some(tenants) = self.tenants {
            parts.push(format!("tenants={tenants}"));
        }
        if let Some(slo) = self.slo_gbps {
            parts.push(format!("slo={slo}"));
        }
        if parts.is_empty() {
            "default".to_string()
        } else {
            parts.join(",")
        }
    }

    /// Append a report carrying `metrics` under this binary's `name` to the file the
    /// `--json` flag named (no-op without the flag). Exits with an error message if
    /// the target file exists but cannot be parsed — a corrupt committed baseline
    /// must be fixed, not overwritten.
    pub fn emit(&self, name: &str, metrics: Vec<Metric>) {
        let Some(path) = &self.json else { return };
        let mut report = BenchReport::new(name, &self.params());
        for m in metrics {
            report.push(m);
        }
        if let Err(e) = report::append_report(path, report) {
            eprintln!("error: failed to write benchmark report: {e}");
            std::process::exit(2);
        }
        println!("[report] {name} appended to {}", path.display());
    }
}

/// Which flags a binary's parser accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FlagSet {
    duration: bool,
    sharded: bool,
    fleet: bool,
}

impl FlagSet {
    fn supported(&self) -> String {
        let mut flags = Vec::new();
        if self.duration {
            flags.push("--duration <seconds>");
        }
        if self.sharded {
            flags.push("--shards <n>");
            flags.push("--parallel <threads>");
        }
        if self.fleet {
            flags.push("--tenants <n>");
            flags.push("--slo-gbps <gbps>");
        }
        flags.push("--json <path>");
        flags.join(", ")
    }
}

/// Parse the shared CLI of the sharded figure binaries: `--duration <seconds>`,
/// `--shards <n>`, `--parallel <threads>` and `--json <path>` (each also in
/// `--flag=value` form), falling back to the given defaults (`--parallel` defaults
/// to 1, i.e. the sequential executor). An unknown flag prints the offending
/// argument plus the supported flag set to stderr and exits with status 2, so a
/// typo'd CI smoke invocation fails loudly instead of silently running full-length.
pub fn fig_args(default_duration: f64, default_shards: usize) -> FigArgs {
    parse_or_exit(
        std::env::args().skip(1),
        FigArgs {
            duration: default_duration,
            shards: Some(default_shards),
            threads: 1,
            scoped: false,
            json: None,
            tenants: None,
            slo_gbps: None,
        },
        FlagSet {
            duration: true,
            sharded: true,
            fleet: false,
        },
    )
}

/// Parse the CLI of a tenant-fleet binary: everything [`fig_args`] accepts plus
/// `--tenants <n>` (fleet size) and `--slo-gbps <gbps>` (per-tenant delivered-rate
/// floor), each also in `--flag=value` form. Same error behaviour as [`fig_args`].
pub fn fig_args_fleet(
    default_duration: f64,
    default_shards: usize,
    default_tenants: usize,
    default_slo_gbps: f64,
) -> FigArgs {
    parse_or_exit(
        std::env::args().skip(1),
        FigArgs {
            duration: default_duration,
            shards: Some(default_shards),
            threads: 1,
            scoped: false,
            json: None,
            tenants: Some(default_tenants),
            slo_gbps: Some(default_slo_gbps),
        },
        FlagSet {
            duration: true,
            sharded: true,
            fleet: true,
        },
    )
}

/// Parse the CLI of a non-sharded timeline binary: `--duration <seconds>` and
/// `--json <path>` only. Same error behaviour as [`fig_args`].
pub fn fig_args_duration(default_duration: f64) -> FigArgs {
    parse_or_exit(
        std::env::args().skip(1),
        FigArgs {
            duration: default_duration,
            shards: None,
            threads: 1,
            scoped: false,
            json: None,
            tenants: None,
            slo_gbps: None,
        },
        FlagSet {
            duration: true,
            sharded: false,
            fleet: false,
        },
    )
}

/// Parse the CLI of a parameterless figure binary: `--json <path>` only. Same error
/// behaviour as [`fig_args`].
pub fn fig_args_static() -> FigArgs {
    parse_or_exit(
        std::env::args().skip(1),
        FigArgs {
            duration: 0.0,
            shards: None,
            threads: 1,
            scoped: false,
            json: None,
            tenants: None,
            slo_gbps: None,
        },
        FlagSet {
            duration: false,
            sharded: false,
            fleet: false,
        },
    )
}

fn parse_or_exit(args: impl Iterator<Item = String>, defaults: FigArgs, flags: FlagSet) -> FigArgs {
    parse_args(args, defaults, flags).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    })
}

/// The parser behind the `fig_args*` entry points.
fn parse_args(
    args: impl Iterator<Item = String>,
    defaults: FigArgs,
    flags: FlagSet,
) -> Result<FigArgs, String> {
    fn value<T: std::str::FromStr>(flag: &str, v: &str) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        v.parse().map_err(|e| format!("bad {flag} {v:?}: {e}"))
    }
    let mut out = defaults;
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        let mut take = |flag: &str| -> Result<Option<String>, String> {
            if a == flag {
                match args.next() {
                    Some(v) => Ok(Some(v)),
                    None => Err(format!("{flag} needs a value")),
                }
            } else {
                Ok(a.strip_prefix(&format!("{flag}=")).map(str::to_string))
            }
        };
        if let Some(v) = if flags.duration {
            take("--duration")?
        } else {
            None
        } {
            out.duration = value("--duration", &v)?;
        } else if let Some(v) = if flags.sharded {
            take("--shards")?
        } else {
            None
        } {
            out.shards = Some(value("--shards", &v)?);
        } else if let Some(v) = if flags.sharded {
            take("--parallel")?
        } else {
            None
        } {
            if let Some(n) = v.strip_prefix("scoped:") {
                out.threads = n
                    .parse()
                    .map_err(|e| format!("bad --parallel {v:?}: {e}"))?;
                out.scoped = true;
            } else {
                out.threads = value("--parallel", &v)?;
                out.scoped = false;
            }
        } else if let Some(v) = if flags.fleet {
            take("--tenants")?
        } else {
            None
        } {
            out.tenants = Some(value("--tenants", &v)?);
        } else if let Some(v) = if flags.fleet {
            take("--slo-gbps")?
        } else {
            None
        } {
            out.slo_gbps = Some(value("--slo-gbps", &v)?);
        } else if let Some(v) = take("--json")? {
            if v.is_empty() {
                return Err("--json needs a non-empty path".into());
            }
            out.json = Some(PathBuf::from(v));
        } else {
            return Err(format!(
                "unknown argument {a:?}; supported flags: {}",
                flags.supported()
            ));
        }
    }
    if out.shards == Some(0) {
        return Err("--shards must be positive".into());
    }
    if out.threads == 0 {
        return Err("--parallel must be positive".into());
    }
    if flags.duration && out.duration <= 0.0 {
        return Err("--duration must be positive".into());
    }
    if let Some(t) = out.tenants {
        if t < 2 {
            return Err("--tenants must be at least 2 (one tenant has nobody to attack)".into());
        }
    }
    if let Some(slo) = out.slo_gbps {
        if slo <= 0.0 {
            return Err("--slo-gbps must be positive".into());
        }
    }
    Ok(out)
}

/// Format a throughput value as `x.xx Gbps`.
pub fn gbps(v: f64) -> String {
    format!("{v:7.3} Gbps")
}

/// Format a percentage relative to a baseline.
pub fn percent(value: f64, baseline: f64) -> String {
    format!("{:6.2} %", 100.0 * value / baseline)
}

/// Render a simple aligned table: a header row plus data rows of equal arity.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<String>, widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(
        header.iter().map(|s| s.to_string()).collect(),
        &widths,
    ));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.clone(), &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_aligns_columns() {
        let t = render_table(
            &["masks", "gbps"],
            &[
                vec!["1".into(), "10.0".into()],
                vec!["8200".into(), "0.02".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("masks"));
        assert!(lines[3].contains("8200"));
    }

    #[test]
    fn formatting_helpers() {
        assert!(gbps(1.5).contains("1.500 Gbps"));
        assert!(percent(5.0, 10.0).contains("50.00"));
    }

    const SHARDED: FlagSet = FlagSet {
        duration: true,
        sharded: true,
        fleet: false,
    };
    const DURATION_ONLY: FlagSet = FlagSet {
        duration: true,
        sharded: false,
        fleet: false,
    };
    const STATIC: FlagSet = FlagSet {
        duration: false,
        sharded: false,
        fleet: false,
    };
    const FLEET: FlagSet = FlagSet {
        duration: true,
        sharded: true,
        fleet: true,
    };

    fn parse(args: &[&str], flags: FlagSet) -> Result<FigArgs, String> {
        parse_args(
            args.iter().map(|s| s.to_string()),
            FigArgs {
                duration: if flags.duration { 70.0 } else { 0.0 },
                shards: flags.sharded.then_some(4),
                threads: 1,
                scoped: false,
                json: None,
                tenants: flags.fleet.then_some(1000),
                slo_gbps: flags.fleet.then_some(0.005),
            },
            flags,
        )
    }

    #[test]
    fn fig_args_defaults_and_flags() {
        assert_eq!(
            parse(&[], SHARDED).unwrap(),
            FigArgs {
                duration: 70.0,
                shards: Some(4),
                threads: 1,
                scoped: false,
                json: None,
                tenants: None,
                slo_gbps: None,
            }
        );
        assert_eq!(
            parse(
                &["--duration", "35", "--parallel", "8", "--shards", "16"],
                SHARDED
            )
            .unwrap(),
            FigArgs {
                duration: 35.0,
                shards: Some(16),
                threads: 8,
                scoped: false,
                json: None,
                tenants: None,
                slo_gbps: None,
            }
        );
        assert_eq!(
            parse(&["--parallel=2", "--duration=5.5"], SHARDED).unwrap(),
            FigArgs {
                duration: 5.5,
                shards: Some(4),
                threads: 2,
                scoped: false,
                json: None,
                tenants: None,
                slo_gbps: None,
            }
        );
    }

    #[test]
    fn fleet_flags_parse_validate_and_stay_scoped() {
        let parsed = parse(&["--tenants", "64", "--slo-gbps=0.002"], FLEET).unwrap();
        assert_eq!(parsed.tenants, Some(64));
        assert_eq!(parsed.slo_gbps, Some(0.002));
        // Defaults survive when unset.
        let parsed = parse(&[], FLEET).unwrap();
        assert_eq!((parsed.tenants, parsed.slo_gbps), (Some(1000), Some(0.005)));
        // Validation mirrors --shards/--parallel: loud errors, no panics.
        assert!(parse(&["--tenants", "1"], FLEET)
            .unwrap_err()
            .contains("at least 2"));
        assert!(parse(&["--slo-gbps", "0"], FLEET)
            .unwrap_err()
            .contains("positive"));
        assert!(parse(&["--tenants", "many"], FLEET)
            .unwrap_err()
            .contains("bad --tenants"));
        assert!(parse(&["--tenants"], FLEET)
            .unwrap_err()
            .contains("needs a value"));
        // Non-fleet binaries reject the flags and list the fleet set only when on.
        let e = parse(&["--tenants", "64"], SHARDED).unwrap_err();
        assert!(e.contains("--tenants") && !e.contains("--slo-gbps <gbps>"));
        let e = parse(&["--frobnicate"], FLEET).unwrap_err();
        assert!(e.contains("--tenants <n>") && e.contains("--slo-gbps <gbps>"));
        // Params identity includes the fleet axes.
        assert_eq!(
            parse(&["--duration=35", "--tenants=64"], FLEET)
                .unwrap()
                .params(),
            "duration=35,shards=4,parallel=1,tenants=64,slo=0.005"
        );
    }

    #[test]
    fn json_flag_is_accepted_everywhere() {
        for flags in [SHARDED, DURATION_ONLY, STATIC] {
            let parsed = parse(&["--json", "BENCH_x.json"], flags).unwrap();
            assert_eq!(
                parsed.json.as_deref(),
                Some(std::path::Path::new("BENCH_x.json"))
            );
        }
        let parsed = parse(&["--json=out/b.json"], STATIC).unwrap();
        assert_eq!(
            parsed.json.as_deref(),
            Some(std::path::Path::new("out/b.json"))
        );
        assert!(parse(&["--json", ""], STATIC).is_err());
    }

    #[test]
    fn fig_args_selects_the_executor() {
        assert_eq!(parse(&[], SHARDED).unwrap().executor().name(), "sequential");
        assert_eq!(parse(&[], SHARDED).unwrap().executor_label(), "sequential");
        // Plain `--parallel N` selects the long-lived persistent pool.
        let par = parse(&["--parallel", "4"], SHARDED).unwrap();
        assert_eq!(par.executor().name(), "persistent-pool");
        assert_eq!(par.executor_label(), "persistent-pool(4)");
        // The scoped per-batch pool stays reachable behind an explicit value.
        let scoped = parse(&["--parallel", "scoped:4"], SHARDED).unwrap();
        assert_eq!(scoped.executor().name(), "thread-pool");
        assert_eq!(scoped.executor_label(), "thread-pool(4)");
        assert_eq!(parse(&["--parallel=scoped:3"], SHARDED).unwrap().threads, 3);
        // A later plain value overrides an earlier scoped one completely.
        let overridden = parse(&["--parallel=scoped:3", "--parallel=2"], SHARDED).unwrap();
        assert!(!overridden.scoped);
        assert_eq!(overridden.executor_label(), "persistent-pool(2)");
    }

    #[test]
    fn scoped_parallel_validates_and_keeps_its_own_params_identity() {
        // The params identity distinguishes the pools: committed baselines recorded
        // under `parallel=N` keep matching the (executor-independent) deterministic
        // metrics, while scoped runs file under their own key.
        assert_eq!(
            parse(&["--duration=35", "--parallel=scoped:2"], SHARDED)
                .unwrap()
                .params(),
            "duration=35,shards=4,parallel=scoped:2"
        );
        assert!(parse(&["--parallel", "scoped:0"], SHARDED)
            .unwrap_err()
            .contains("positive"));
        assert!(parse(&["--parallel", "scoped:nope"], SHARDED)
            .unwrap_err()
            .contains("bad --parallel \"scoped:nope\""));
    }

    #[test]
    fn unknown_flags_report_the_flag_and_the_supported_set() {
        let e = parse(&["--parallel", "4"], DURATION_ONLY).unwrap_err();
        assert!(
            e.contains("--parallel"),
            "must name the offending flag: {e}"
        );
        assert!(e.contains("--duration <seconds>"), "must list the set: {e}");
        assert!(e.contains("--json <path>"), "must list the set: {e}");
        assert!(
            !e.contains("--shards <n>"),
            "must not claim unsupported flags: {e}"
        );

        let e = parse(&["--duration", "5"], STATIC).unwrap_err();
        assert!(e.contains("--duration"));
        assert_eq!(
            parse(&["--frobnicate"], SHARDED).unwrap_err(),
            "unknown argument \"--frobnicate\"; supported flags: --duration <seconds>, \
             --shards <n>, --parallel <threads>, --json <path>"
        );
    }

    #[test]
    fn invalid_values_are_errors_not_panics() {
        assert!(parse(&["--parallel", "0"], SHARDED)
            .unwrap_err()
            .contains("positive"));
        assert!(parse(&["--shards", "0"], SHARDED)
            .unwrap_err()
            .contains("positive"));
        assert!(parse(&["--shards"], SHARDED)
            .unwrap_err()
            .contains("needs a value"));
        assert!(parse(&["--duration", "nope"], SHARDED)
            .unwrap_err()
            .contains("bad --duration"));
        assert!(parse(&["--duration", "-3"], SHARDED)
            .unwrap_err()
            .contains("positive"));
    }

    #[test]
    fn shard_count_accessor() {
        assert_eq!(
            parse(&["--shards", "16"], SHARDED).unwrap().shard_count(),
            16
        );
    }

    #[test]
    #[should_panic(expected = "no --shards flag")]
    fn shard_count_panics_without_sharding() {
        parse(&[], DURATION_ONLY).unwrap().shard_count();
    }

    #[test]
    fn params_canonicalization() {
        assert_eq!(
            parse(&[], SHARDED).unwrap().params(),
            "duration=70,shards=4,parallel=1"
        );
        assert_eq!(
            parse(&["--duration=35", "--parallel=2"], SHARDED)
                .unwrap()
                .params(),
            "duration=35,shards=4,parallel=2"
        );
        assert_eq!(
            parse(&["--duration=5.5"], DURATION_ONLY).unwrap().params(),
            "duration=5.5"
        );
        assert_eq!(parse(&[], STATIC).unwrap().params(), "default");
    }
}
