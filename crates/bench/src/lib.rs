//! # tse-bench
//!
//! The benchmark harness of the reproduction. It has two halves:
//!
//! * **figure binaries** (`src/bin/`): one binary per table/figure of the paper's
//!   evaluation, each printing the same rows/series the paper reports (see DESIGN.md §5
//!   for the experiment index and EXPERIMENTS.md for recorded outputs);
//! * **criterion micro-benchmarks** (`benches/`): wall-clock measurements of the TSS
//!   lookup as the mask count grows, the megaflow-generation strategies, and the
//!   baseline classifiers.
//!
//! This library crate only hosts small shared helpers for the binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use tse_switch::exec::{SequentialExecutor, ShardExecutor, ThreadPoolExecutor};

/// Parse an optional `--duration <seconds>` / `--duration=<seconds>` CLI flag,
/// falling back to `default`. Any other argument is an error (panics), so a typo in a
/// CI smoke invocation fails the job instead of silently running full-length.
///
/// Every timeline figure binary accepts this flag so CI can smoke-run them with a
/// short horizon (e.g. `fig9_backend_matrix -- --duration 10`) without touching the
/// full-length defaults used to regenerate the paper's figures.
pub fn duration_arg(default: f64) -> f64 {
    let parsed = parse_args(
        std::env::args().skip(1),
        FigArgs {
            duration: default,
            shards: 0,
            threads: 1,
        },
        false,
    );
    parsed.duration
}

/// Parsed command line of a sharded figure binary (see [`fig_args`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FigArgs {
    /// Experiment horizon, seconds (`--duration`).
    pub duration: f64,
    /// Number of datapath shards / PMD threads to model (`--shards`).
    pub shards: usize,
    /// Worker threads driving the per-shard fan-out (`--parallel`; 1 = sequential).
    pub threads: usize,
}

impl FigArgs {
    /// The shard executor the flags select: a [`ThreadPoolExecutor`] when
    /// `--parallel` asked for more than one thread, the default
    /// [`SequentialExecutor`] otherwise. Timelines are identical either way; only
    /// wall-clock time changes.
    pub fn executor(&self) -> Box<dyn ShardExecutor> {
        if self.threads > 1 {
            Box::new(ThreadPoolExecutor::new(self.threads))
        } else {
            Box::new(SequentialExecutor)
        }
    }

    /// `"sequential"` or `"thread-pool(N)"` — for experiment headers.
    pub fn executor_label(&self) -> String {
        if self.threads > 1 {
            format!("thread-pool({})", self.threads)
        } else {
            "sequential".to_string()
        }
    }
}

/// Parse the shared CLI of the sharded figure binaries: `--duration <seconds>`,
/// `--shards <n>` and `--parallel <threads>` (each also in `--flag=value` form),
/// falling back to the given defaults (`--parallel` defaults to 1, i.e. the
/// sequential executor). Unknown arguments panic, exactly like [`duration_arg`], so a
/// typo'd CI smoke invocation fails loudly.
pub fn fig_args(default_duration: f64, default_shards: usize) -> FigArgs {
    parse_args(
        std::env::args().skip(1),
        FigArgs {
            duration: default_duration,
            shards: default_shards,
            threads: 1,
        },
        true,
    )
}

/// The parser behind [`duration_arg`] and [`fig_args`]; `sharded` additionally
/// enables `--shards` / `--parallel`.
fn parse_args(args: impl Iterator<Item = String>, defaults: FigArgs, sharded: bool) -> FigArgs {
    fn value<T: std::str::FromStr>(flag: &str, v: &str) -> T
    where
        T::Err: std::fmt::Display,
    {
        v.parse()
            .unwrap_or_else(|e| panic!("bad {flag} {v:?}: {e}"))
    }
    let mut out = defaults;
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        let mut take = |flag: &str| -> Option<String> {
            if a == flag {
                Some(
                    args.next()
                        .unwrap_or_else(|| panic!("{flag} needs a value")),
                )
            } else {
                a.strip_prefix(&format!("{flag}=")).map(str::to_string)
            }
        };
        if let Some(v) = take("--duration") {
            out.duration = value("--duration", &v);
        } else if let Some(v) = if sharded { take("--shards") } else { None } {
            out.shards = value("--shards", &v);
        } else if let Some(v) = if sharded { take("--parallel") } else { None } {
            out.threads = value("--parallel", &v);
        } else if sharded {
            panic!(
                "unknown argument {a:?}; supported flags: --duration <seconds>, \
                 --shards <n>, --parallel <threads>"
            );
        } else {
            panic!("unknown argument {a:?}; the only supported flag is --duration <seconds>");
        }
    }
    assert!(out.shards > 0 || !sharded, "--shards must be positive");
    assert!(out.threads > 0, "--parallel must be positive");
    out
}

/// Format a throughput value as `x.xx Gbps`.
pub fn gbps(v: f64) -> String {
    format!("{v:7.3} Gbps")
}

/// Format a percentage relative to a baseline.
pub fn percent(value: f64, baseline: f64) -> String {
    format!("{:6.2} %", 100.0 * value / baseline)
}

/// Render a simple aligned table: a header row plus data rows of equal arity.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<String>, widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(
        header.iter().map(|s| s.to_string()).collect(),
        &widths,
    ));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.clone(), &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_aligns_columns() {
        let t = render_table(
            &["masks", "gbps"],
            &[
                vec!["1".into(), "10.0".into()],
                vec!["8200".into(), "0.02".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("masks"));
        assert!(lines[3].contains("8200"));
    }

    #[test]
    fn formatting_helpers() {
        assert!(gbps(1.5).contains("1.500 Gbps"));
        assert!(percent(5.0, 10.0).contains("50.00"));
    }

    fn parse(args: &[&str], sharded: bool) -> FigArgs {
        parse_args(
            args.iter().map(|s| s.to_string()),
            FigArgs {
                duration: 70.0,
                shards: 4,
                threads: 1,
            },
            sharded,
        )
    }

    #[test]
    fn fig_args_defaults_and_flags() {
        assert_eq!(
            parse(&[], true),
            FigArgs {
                duration: 70.0,
                shards: 4,
                threads: 1
            }
        );
        assert_eq!(
            parse(
                &["--duration", "35", "--parallel", "8", "--shards", "16"],
                true
            ),
            FigArgs {
                duration: 35.0,
                shards: 16,
                threads: 8
            }
        );
        assert_eq!(
            parse(&["--parallel=2", "--duration=5.5"], true),
            FigArgs {
                duration: 5.5,
                shards: 4,
                threads: 2
            }
        );
    }

    #[test]
    fn fig_args_selects_the_executor() {
        assert_eq!(parse(&[], true).executor().name(), "sequential");
        assert_eq!(parse(&[], true).executor_label(), "sequential");
        let par = parse(&["--parallel", "4"], true);
        assert_eq!(par.executor().name(), "thread-pool");
        assert_eq!(par.executor_label(), "thread-pool(4)");
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn duration_only_parser_rejects_parallel() {
        parse(&["--parallel", "4"], false);
    }

    #[test]
    #[should_panic(expected = "--parallel must be positive")]
    fn zero_parallel_is_rejected() {
        parse(&["--parallel", "0"], true);
    }

    #[test]
    #[should_panic(expected = "--shards needs a value")]
    fn missing_value_is_rejected() {
        parse(&["--shards"], true);
    }
}
