//! # tse-bench
//!
//! The benchmark harness of the reproduction. It has two halves:
//!
//! * **figure binaries** (`src/bin/`): one binary per table/figure of the paper's
//!   evaluation, each printing the same rows/series the paper reports (see DESIGN.md §5
//!   for the experiment index and EXPERIMENTS.md for recorded outputs);
//! * **criterion micro-benchmarks** (`benches/`): wall-clock measurements of the TSS
//!   lookup as the mask count grows, the megaflow-generation strategies, and the
//!   baseline classifiers.
//!
//! This library crate only hosts small shared helpers for the binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Parse an optional `--duration <seconds>` / `--duration=<seconds>` CLI flag,
/// falling back to `default`. Any other argument is an error (panics), so a typo in a
/// CI smoke invocation fails the job instead of silently running full-length.
///
/// Every timeline figure binary accepts this flag so CI can smoke-run them with a
/// short horizon (e.g. `fig9_backend_matrix -- --duration 10`) without touching the
/// full-length defaults used to regenerate the paper's figures.
pub fn duration_arg(default: f64) -> f64 {
    let parse = |v: &str| -> f64 {
        v.parse()
            .unwrap_or_else(|e| panic!("bad --duration {v:?}: {e}"))
    };
    let mut duration = default;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--duration" {
            let v = args
                .next()
                .unwrap_or_else(|| panic!("--duration needs a value"));
            duration = parse(&v);
        } else if let Some(v) = a.strip_prefix("--duration=") {
            duration = parse(v);
        } else {
            panic!("unknown argument {a:?}; the only supported flag is --duration <seconds>");
        }
    }
    duration
}

/// Format a throughput value as `x.xx Gbps`.
pub fn gbps(v: f64) -> String {
    format!("{v:7.3} Gbps")
}

/// Format a percentage relative to a baseline.
pub fn percent(value: f64, baseline: f64) -> String {
    format!("{:6.2} %", 100.0 * value / baseline)
}

/// Render a simple aligned table: a header row plus data rows of equal arity.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<String>, widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(
        header.iter().map(|s| s.to_string()).collect(),
        &widths,
    ));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.clone(), &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_aligns_columns() {
        let t = render_table(
            &["masks", "gbps"],
            &[
                vec!["1".into(), "10.0".into()],
                vec!["8200".into(), "0.02".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("masks"));
        assert!(lines[3].contains("8200"));
    }

    #[test]
    fn formatting_helpers() {
        assert!(gbps(1.5).contains("1.500 Gbps"));
        assert!(percent(5.0, 10.0).contains("50.00"));
    }
}
