//! E-MITIGATE: the mitigation matrix — every defense stack against the pinned and
//! sprayed shard-targeted SipDp explosions.
//!
//! 16 PMD shards behind RSS steering carry two 4 Gbps victims pinned to different
//! shards. The co-located SipDp attacker either retags her free destination address so
//! the whole explosion lands on Victim A's shard (`pinned`, the PR 3 collapse shape)
//! or sprays it round-robin over all shards (`sprayed`). Against each attack the
//! experiment runs five defense stacks:
//!
//! * `none`        — the undefended datapath;
//! * `guard`       — per-shard MFCGuard ([`GuardMitigation`]);
//! * `rekey`       — RSS hash-key rotation every 10 s ([`RssKeyRandomizer`]);
//! * `guard+rekey` — both, guard first;
//! * `full`        — guard + rekey + per-shard upcall quotas ([`UpcallLimiter`]) +
//!   mask ceilings ([`MaskCap`]).
//!
//! The headline cell is `pinned × rekey`: rotation alone restores Victim A to within
//! 2x of its baseline (the stale-pinned stream dilutes to ~1/16 per shard, under the
//! ~83-mask knee of the cost model) while the undefended pinned run collapses her to
//! ~10 % of baseline — and rotation costs nothing on the benign path, unlike the
//! guard's suppression or the cap's collateral evictions.
//!
//! Run with `--duration <s>` (default 70) — CI smoke-runs it short — plus the shared
//! sharded flags: `--shards <n>` (default 16) and `--parallel <threads>` to drive the
//! per-shard fan-out from a thread pool (timelines are executor-independent).

use rand::rngs::StdRng;
use rand::SeedableRng;
use tse_attack::scenarios::Scenario;
use tse_attack::sharding::{pin_to_shard, spray_shards};
use tse_attack::source::{AttackGenerator, TrafficMix};
use tse_bench::render_table;
use tse_mitigation::guard::{GuardConfig, GuardMitigation};
use tse_mitigation::stack::MitigationAction;
use tse_mitigation::{MaskCap, RssKeyRandomizer, UpcallLimiter};
use tse_packet::fields::{FieldSchema, Key};
use tse_simnet::offload::OffloadConfig;
use tse_simnet::runner::{ExperimentRunner, Timeline};
use tse_simnet::traffic::{VictimFlow, VictimSource};
use tse_switch::datapath::Datapath;
use tse_switch::pmd::{ShardedDatapath, Steering};

const ATTACK_START: f64 = 20.0;
const ATTACK_PPS: f64 = 100.0;
const STACKS: [&str; 5] = ["none", "guard", "rekey", "guard+rekey", "full"];

fn attack_keys(schema: &FieldSchema) -> tse_attack::colocated::BitInversionKeys {
    let mut base = schema.zero_value();
    base.set(schema.field_index("ip_proto").unwrap(), 6);
    base.set(schema.field_index("ip_dst").unwrap(), 0x0a00_00c8);
    Scenario::SipDp.key_iter(schema, &base)
}

fn with_stack(runner: ExperimentRunner, spec: &str) -> ExperimentRunner {
    let guard = || GuardMitigation::new(GuardConfig::default());
    let rekey = || RssKeyRandomizer::new(10.0, 0xC0FFEE);
    match spec {
        "none" => runner,
        "guard" => runner.with_mitigation(guard()),
        "rekey" => runner.with_mitigation(rekey()),
        "guard+rekey" => runner.with_mitigation(guard()).with_mitigation(rekey()),
        "full" => runner
            .with_mitigation(guard())
            .with_mitigation(rekey())
            .with_mitigation(UpcallLimiter::new(10))
            .with_mitigation(MaskCap::new(64)),
        other => panic!("unknown stack {other:?}"),
    }
}

fn run(
    schema: &FieldSchema,
    args: &tse_bench::FigArgs,
    victims: &[VictimFlow],
    keys: impl Iterator<Item = Key> + Send + 'static,
    stack: &str,
) -> (Timeline, f64) {
    let duration = args.duration;
    let table = Scenario::SipDp.flow_table(schema);
    let sharded = ShardedDatapath::from_builder(
        Datapath::builder(table).with_executor(args.executor()),
        args.shard_count(),
        Steering::Rss,
    );
    let mut runner = with_stack(
        ExperimentRunner::sharded(sharded, Vec::new(), OffloadConfig::gro_off()),
        stack,
    );
    let mut mix = TrafficMix::new();
    for flow in victims {
        mix.push(Box::new(VictimSource::new(
            flow.clone(),
            schema,
            runner.sample_interval,
        )));
    }
    let packets = ((duration - ATTACK_START).max(1.0) * ATTACK_PPS) as usize;
    mix.push(Box::new(
        AttackGenerator::new(
            "Attacker",
            schema,
            keys,
            StdRng::seed_from_u64(99),
            ATTACK_PPS,
            ATTACK_START,
        )
        .with_limit(packets),
    ));
    let timeline = runner.run_mix(mix, duration);
    let busy = runner.datapath.busy_seconds();
    (timeline, busy)
}

fn victim_mean(tl: &Timeline, idx: usize, start: f64, stop: f64) -> f64 {
    let vals: Vec<f64> = tl
        .samples
        .iter()
        .filter(|s| s.time >= start && s.time < stop)
        .map(|s| s.victim_gbps[idx])
        .collect();
    vals.iter().sum::<f64>() / vals.len().max(1) as f64
}

/// Count the stack's actions by kind over the whole timeline.
fn action_summary(tl: &Timeline) -> String {
    let (mut sweeps, mut rekeys, mut clamps, mut caps) = (0usize, 0usize, 0usize, 0usize);
    for s in &tl.samples {
        for a in &s.mitigation_actions {
            match a {
                MitigationAction::GuardSweep(r) if r.entries_removed > 0 => sweeps += 1,
                MitigationAction::GuardSweep(_) => {}
                MitigationAction::Rekeyed { .. } => rekeys += 1,
                MitigationAction::UpcallsClamped { .. } => clamps += 1,
                MitigationAction::MaskCapped { .. } => caps += 1,
            }
        }
    }
    let mut parts = Vec::new();
    if sweeps > 0 {
        parts.push(format!("{sweeps} sweeps"));
    }
    if rekeys > 0 {
        parts.push(format!("{rekeys} rekeys"));
    }
    if clamps > 0 {
        parts.push(format!("{clamps} clamps"));
    }
    if caps > 0 {
        parts.push(format!("{caps} caps"));
    }
    if parts.is_empty() {
        "-".into()
    } else {
        parts.join(", ")
    }
}

fn main() {
    let args = tse_bench::fig_args(70.0, 16);
    let (duration, n_shards) = (args.duration, args.shard_count());
    let schema = FieldSchema::ovs_ipv4();
    let ip_dst = schema.field_index("ip_dst").unwrap();
    // Victim B must live off the attacked shard 0 (shard 5 in the default 16-shard
    // setup; clamped away from 0 for shard counts that would alias it).
    assert!(
        n_shards >= 2,
        "the pinned/sprayed comparison needs --shards >= 2 (victim B must live off the attacked shard)"
    );
    let b_shard = (5 % n_shards).max(1);
    let victims = [
        VictimFlow::iperf_tcp("Victim A", 0x0a00_0005, 0x0a00_0063, 4.0).steered_to_shard(
            &schema,
            Steering::Rss,
            n_shards,
            0,
        ),
        VictimFlow::iperf_tcp("Victim B", 0x0a00_0006, 0x0a00_0063, 4.0).steered_to_shard(
            &schema,
            Steering::Rss,
            n_shards,
            b_shard,
        ),
    ];
    let during_start = (ATTACK_START + 10.0).min(duration - 2.0);
    let during_end = duration - 1.0;
    println!(
        "== Mitigation matrix: {n_shards} PMD shards (RSS, {} executor), SipDp @ {ATTACK_PPS} pps from t={ATTACK_START} s, duration {duration} s ==",
        args.executor_label()
    );
    println!(
        "Victim A on shard 0 (pinned target), Victim B on shard {b_shard}; 4 Gbps offered each."
    );
    println!("During-attack window: t = {during_start}..{during_end} s.\n");

    let mut rekey_restored_a = 0.0;
    let mut unmitigated_pinned_a = 0.0;
    let mut baseline_a = 0.0;
    let mut metrics = Vec::new();
    let mut total_cost = 0.0;
    let wall = std::time::Instant::now();
    for attack in ["pinned", "sprayed"] {
        let mut rows = Vec::new();
        for stack in STACKS {
            let (tl, busy) = match attack {
                "pinned" => run(
                    &schema,
                    &args,
                    &victims,
                    pin_to_shard(&schema, attack_keys(&schema).cycle(), ip_dst, n_shards, 0),
                    stack,
                ),
                _ => run(
                    &schema,
                    &args,
                    &victims,
                    spray_shards(&schema, attack_keys(&schema).cycle(), ip_dst, n_shards),
                    stack,
                ),
            };
            let a_before = victim_mean(&tl, 0, 5.0, ATTACK_START - 1.0);
            let a_during = victim_mean(&tl, 0, during_start, during_end);
            let b_during = victim_mean(&tl, 1, during_start, during_end);
            let peak_masks = tl
                .samples
                .iter()
                .flat_map(|s| s.shard_masks.iter())
                .max()
                .copied()
                .unwrap_or(0);
            if attack == "pinned" && stack == "none" {
                baseline_a = a_before;
                unmitigated_pinned_a = a_during;
            }
            if attack == "pinned" && stack == "rekey" {
                rekey_restored_a = a_during;
            }
            total_cost += busy;
            use tse_bench::report::Metric;
            metrics.push(
                Metric::deterministic(&format!("{attack}/{stack}/victim_a_gbps"), "gbps", a_during)
                    .higher_is_better(),
            );
            metrics.push(
                Metric::deterministic(&format!("{attack}/{stack}/victim_b_gbps"), "gbps", b_during)
                    .higher_is_better(),
            );
            metrics.push(Metric::deterministic(
                &format!("{attack}/{stack}/peak_shard_masks"),
                "masks",
                peak_masks as f64,
            ));
            rows.push(vec![
                stack.to_string(),
                format!("{a_during:6.2}"),
                format!("{b_during:6.2}"),
                format!("{:5.1} %", 100.0 * a_during / a_before.max(1e-9)),
                format!("{peak_masks}"),
                action_summary(&tl),
            ]);
        }
        println!("-- {attack} attack --");
        println!(
            "{}",
            render_table(
                &[
                    "stack",
                    "A Gbps (attack)",
                    "B Gbps (attack)",
                    "A vs baseline",
                    "peak shard masks",
                    "actions",
                ],
                &rows,
            )
        );
    }

    println!(
        "acceptance: unmitigated pinned run collapses Victim A to {unmitigated_pinned_a:.2} Gbps \
         (baseline {baseline_a:.2}); RSS rekeying alone restores her to {rekey_restored_a:.2} Gbps"
    );
    // The collapse needs the attack to actually land inside the measurement window
    // (it starts at ATTACK_START and takes a few intervals to fill the cache); an
    // ultra-short smoke horizon measures only pre-attack seconds.
    if duration >= ATTACK_START + 12.0 {
        assert!(
            unmitigated_pinned_a < baseline_a * 0.25,
            "pinned attack must collapse the undefended victim"
        );
    } else {
        println!(
            "(horizon too short to assert the pinned collapse — run with --duration 70 \
             for the acceptance measurement)"
        );
    }
    // The within-2x claim needs a window long enough to average over the rotation
    // transients (stranded masks linger up to one idle timeout after each rekey); a
    // short smoke horizon samples only the worst seconds right after a rotation.
    if during_end - during_start >= 20.0 {
        assert!(
            rekey_restored_a > baseline_a * 0.5,
            "rekeying must restore the pinned victim to within 2x of baseline"
        );
    } else {
        println!(
            "(horizon too short to assert the within-2x rekey recovery — run with \
             --duration 70 for the acceptance measurement)"
        );
    }

    use tse_bench::report::Metric;
    metrics.push(
        Metric::deterministic("pinned/none/baseline_a_gbps", "gbps", baseline_a).higher_is_better(),
    );
    metrics.push(Metric::deterministic(
        "total_cost_seconds",
        "cost_seconds",
        total_cost,
    ));
    metrics.push(Metric::wall(
        "wall_seconds",
        "seconds_wall",
        wall.elapsed().as_secs_f64(),
    ));
    args.emit(env!("CARGO_BIN_NAME"), metrics);
}
