//! E-MA: a scenario the paper's testbed never ran but the streaming API makes a
//! few-lines experiment — **multi-attacker staggered onset**. Three co-located tenants
//! launch TSE waves of increasing strength (Dp at t=20 s, SipDp at t=50 s, a lazy
//! General-TSE SipSpDp sprayer at t=80 s) against a shared datapath carrying two
//! victim flows; the timeline attributes delivered pps per attacker.
//!
//! Run with `--duration <s>` (default 140) — CI smoke-runs it short.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tse_attack::general::RandomKeys;
use tse_attack::scenarios::Scenario;
use tse_attack::source::{AttackGenerator, TrafficMix};
use tse_packet::fields::FieldSchema;
use tse_simnet::offload::OffloadConfig;
use tse_simnet::runner::ExperimentRunner;
use tse_simnet::traffic::{VictimFlow, VictimSource};
use tse_switch::datapath::Datapath;

fn main() {
    let args = tse_bench::fig_args_duration(140.0);
    let duration = args.duration;
    let schema = FieldSchema::ovs_ipv4();
    let base = schema.zero_value();
    let table = Scenario::SipSpDp.flow_table(&schema);
    let mut runner =
        ExperimentRunner::new(Datapath::new(table), Vec::new(), OffloadConfig::gro_off());

    // Everything below is lazily generated — no trace is materialised.
    let mix = TrafficMix::new()
        .with(VictimSource::new(
            VictimFlow::iperf_tcp("Victim 1", 0x0a000005, 0x0a000063, 10.0).with_src_port(40001),
            &schema,
            runner.sample_interval,
        ))
        .with(VictimSource::new(
            VictimFlow::iperf_tcp("Victim 2", 0x0a000006, 0x0a000063, 10.0).with_src_port(40002),
            &schema,
            runner.sample_interval,
        ))
        .with(
            AttackGenerator::new(
                "Dp@20s",
                &schema,
                Scenario::Dp.key_iter(&schema, &base).cycle(),
                StdRng::seed_from_u64(1),
                100.0,
                20.0,
            )
            .with_limit(12_000),
        )
        .with(
            AttackGenerator::new(
                "SipDp@50s",
                &schema,
                Scenario::SipDp.key_iter(&schema, &base).cycle(),
                StdRng::seed_from_u64(2),
                100.0,
                50.0,
            )
            .with_limit(9_000),
        )
        .with(
            AttackGenerator::new(
                "General@80s",
                &schema,
                RandomKeys::new(StdRng::seed_from_u64(3), &schema, Scenario::SipSpDp, &base),
                StdRng::seed_from_u64(4),
                500.0,
                80.0,
            )
            .with_limit(20_000),
        );

    let wall = std::time::Instant::now();
    let timeline = runner.run_mix(mix, duration);
    let wall = wall.elapsed().as_secs_f64();
    println!(
        "== Multi-attacker staggered onset: Dp@20s + SipDp@50s + General-TSE@80s, 2 victims ==\n"
    );
    println!("{}", timeline.render_table());
    let clean = timeline.mean_total_between(5.0, 19.0);
    let dp_only = timeline.mean_total_between(30.0, 49.0);
    let plus_sipdp = timeline.mean_total_between(60.0, 79.0);
    let plus_general = timeline.mean_total_between(90.0, 119.0);
    println!(
        "victim sum: clean {clean:.2} Gbps | Dp only {dp_only:.2} | +SipDp {plus_sipdp:.2} | +General {plus_general:.2}",
    );

    use tse_bench::report::Metric;
    let peak_masks = timeline
        .samples
        .iter()
        .map(|s| s.mask_count)
        .max()
        .unwrap_or(0);
    let peak_entries = timeline
        .samples
        .iter()
        .map(|s| s.entry_count)
        .max()
        .unwrap_or(0);
    args.emit(
        env!("CARGO_BIN_NAME"),
        vec![
            Metric::deterministic("victim_gbps_clean", "gbps", clean).higher_is_better(),
            Metric::deterministic("victim_gbps_dp_only", "gbps", dp_only).higher_is_better(),
            Metric::deterministic("victim_gbps_plus_sipdp", "gbps", plus_sipdp).higher_is_better(),
            Metric::deterministic("victim_gbps_plus_general", "gbps", plus_general)
                .higher_is_better(),
            Metric::deterministic("peak_masks", "masks", peak_masks as f64),
            Metric::deterministic("peak_entries", "entries", peak_entries as f64),
            Metric::deterministic(
                "total_cost_seconds",
                "cost_seconds",
                runner.datapath.busy_seconds(),
            ),
            Metric::wall("wall_seconds", "seconds_wall", wall),
        ],
    );
}
