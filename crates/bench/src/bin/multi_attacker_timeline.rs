//! E-MA: a scenario the paper's testbed never ran but the streaming API makes a
//! few-lines experiment — **multi-attacker staggered onset**. Three co-located tenants
//! launch TSE waves of increasing strength (Dp at t=20 s, SipDp at t=50 s, a lazy
//! General-TSE SipSpDp sprayer at t=80 s) against a shared datapath carrying two
//! victim flows; the timeline attributes delivered pps per attacker.
//!
//! Run with `--duration <s>` (default 140) — CI smoke-runs it short.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tse_attack::general::RandomKeys;
use tse_attack::scenarios::Scenario;
use tse_attack::source::{AttackGenerator, TrafficMix};
use tse_packet::fields::FieldSchema;
use tse_simnet::offload::OffloadConfig;
use tse_simnet::runner::ExperimentRunner;
use tse_simnet::traffic::{VictimFlow, VictimSource};
use tse_switch::datapath::Datapath;

fn main() {
    let duration = tse_bench::duration_arg(140.0);
    let schema = FieldSchema::ovs_ipv4();
    let base = schema.zero_value();
    let table = Scenario::SipSpDp.flow_table(&schema);
    let mut runner =
        ExperimentRunner::new(Datapath::new(table), Vec::new(), OffloadConfig::gro_off());

    // Everything below is lazily generated — no trace is materialised.
    let mix = TrafficMix::new()
        .with(VictimSource::new(
            VictimFlow::iperf_tcp("Victim 1", 0x0a000005, 0x0a000063, 10.0).with_src_port(40001),
            &schema,
            runner.sample_interval,
        ))
        .with(VictimSource::new(
            VictimFlow::iperf_tcp("Victim 2", 0x0a000006, 0x0a000063, 10.0).with_src_port(40002),
            &schema,
            runner.sample_interval,
        ))
        .with(
            AttackGenerator::new(
                "Dp@20s",
                &schema,
                Scenario::Dp.key_iter(&schema, &base).cycle(),
                StdRng::seed_from_u64(1),
                100.0,
                20.0,
            )
            .with_limit(12_000),
        )
        .with(
            AttackGenerator::new(
                "SipDp@50s",
                &schema,
                Scenario::SipDp.key_iter(&schema, &base).cycle(),
                StdRng::seed_from_u64(2),
                100.0,
                50.0,
            )
            .with_limit(9_000),
        )
        .with(
            AttackGenerator::new(
                "General@80s",
                &schema,
                RandomKeys::new(StdRng::seed_from_u64(3), &schema, Scenario::SipSpDp, &base),
                StdRng::seed_from_u64(4),
                500.0,
                80.0,
            )
            .with_limit(20_000),
        );

    let timeline = runner.run_mix(mix, duration);
    println!(
        "== Multi-attacker staggered onset: Dp@20s + SipDp@50s + General-TSE@80s, 2 victims ==\n"
    );
    println!("{}", timeline.render_table());
    println!(
        "victim sum: clean {:.2} Gbps | Dp only {:.2} | +SipDp {:.2} | +General {:.2}",
        timeline.mean_total_between(5.0, 19.0),
        timeline.mean_total_between(30.0, 49.0),
        timeline.mean_total_between(60.0, 79.0),
        timeline.mean_total_between(90.0, 119.0),
    );
}
