//! E-F9b / E-S62: General TSE — expected (analytic, Eq. 1/2) vs. measured number of MFC
//! masks as a function of the number of random attack packets, per use case, plus the
//! §6.2 degradation summary at 1 000 and 50 000 packets.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tse_attack::expectation::ExpectationModel;
use tse_attack::general::random_trace;
use tse_attack::scenarios::Scenario;
use tse_bench::render_table;
use tse_packet::fields::FieldSchema;
use tse_simnet::offload::OffloadConfig;
use tse_switch::datapath::Datapath;

fn measure(scenario: Scenario, n: usize, seed: u64) -> usize {
    let schema = FieldSchema::ovs_ipv4();
    let table = scenario.flow_table(&schema);
    let mut dp = Datapath::new(table);
    let mut rng = StdRng::seed_from_u64(seed);
    for (i, key) in random_trace(&mut rng, &schema, scenario, &schema.zero_value(), n)
        .iter()
        .enumerate()
    {
        dp.process_key(key, 64, i as f64 * 1e-5);
    }
    dp.mask_count()
}

fn main() {
    let args = tse_bench::fig_args_static();
    let schema = FieldSchema::ovs_ipv4();
    let cases = [Scenario::Dp, Scenario::SipDp, Scenario::SipSpDp];
    let packet_counts = [10usize, 100, 1_000, 5_000, 10_000, 50_000];

    println!("== Fig. 9b: expected (E) and measured (M) MFC masks vs. random packets ==\n");
    let mut header = vec!["packets".to_string()];
    for c in &cases {
        header.push(format!("{} (E)", c.name()));
        header.push(format!("{} (M)", c.name()));
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut rows = Vec::new();
    for &n in &packet_counts {
        let mut row = vec![format!("{n}")];
        for c in &cases {
            let model = ExpectationModel::for_scenario(&schema, *c);
            row.push(format!("{:.1}", model.expected_masks(n as u64)));
            row.push(format!("{}", measure(*c, n, 1000 + n as u64)));
        }
        rows.push(row);
    }
    println!("{}", render_table(&header_refs, &rows));
    println!("\npaper anchors at 50 000 packets: Dp ~16, SipDp ~122, SipSpDp ~581 masks");

    println!("\n== §6.2: General-TSE degradation (GRO OFF, % of baseline) ==\n");
    let gro_off = OffloadConfig::gro_off();
    let mut rows = Vec::new();
    for &n in &[1_000usize, 50_000] {
        for c in &cases {
            let masks = measure(*c, n, 7 + n as u64);
            rows.push(vec![
                format!("{n}"),
                c.name().to_string(),
                format!("{masks}"),
                format!("{:.1} %", gro_off.degradation_percent(masks)),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &["packets", "use case", "masks", "victim capacity (GRO OFF)"],
            &rows
        )
    );
    println!("\npaper anchors: 1 000 pkts -> 72.8 % (Dp), 25.4 % (SpDp/SipDp), 11.7 % (SipSpDp); 50 000 pkts -> 52 %, 12 %, 1 %");

    use tse_bench::report::Metric;
    let mut metrics = Vec::new();
    for c in &cases {
        let model = ExpectationModel::for_scenario(&schema, *c);
        metrics.push(Metric::deterministic(
            &format!("{}/expected_masks_50k", c.name()),
            "masks",
            model.expected_masks(50_000),
        ));
        metrics.push(Metric::deterministic(
            &format!("{}/measured_masks_50k", c.name()),
            "masks",
            measure(*c, 50_000, 1000 + 50_000) as f64,
        ));
    }
    args.emit(env!("CARGO_BIN_NAME"), metrics);
}
