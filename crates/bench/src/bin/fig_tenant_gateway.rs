//! E-TENANT: the hour-long multi-tenant gateway scenario — per-tenant SLOs under
//! mid-run Co-located TSE attacks, at a scale (1k+ tenants, hour horizons) the
//! unbounded timeline could not hold.
//!
//! A [`TenantFleet`] of `--tenants` tenants shares one sharded hypervisor switch
//! behind per-tenant RX steering. Every benign tenant runs an iperf-like flow against
//! its own service; Poisson background churn keeps the megaflow cache realistically
//! busy. Three tenants turn hostile at staggered onsets (20 % / 50 % / 80 % of the
//! horizon): a scheduled ACL update arms their SpDp attack pattern, then each replays
//! the bit-inversion outer product from a single client address — the whole mask
//! explosion pinned to its own RX queue, starving exactly the tenants steered there.
//!
//! The run is recorded through the two-tier [`TelemetryStore`] with a 120-sample hot
//! ring: whole-run per-tenant SLO trackers (violations, time-to-detect,
//! time-to-recover, delivered p50/p99) stream in O(1) memory, and the binary
//! *asserts* `footprint_units() <= footprint_ceiling(..)` — the bounded-memory claim,
//! checked on every run, at every horizon.
//!
//! Two variants: **open** (no defense) and **defended** (pressure-gated
//! [`AdaptiveRekey`] — rotates the RSS key only while the telemetry window shows a
//! shard under sustained attack — plus a per-shard [`GuardMitigation`] sweep).
//!
//! Flags: `--duration <s>` (default 3600), `--tenants <n>` (default 1000),
//! `--slo-gbps <g>` (default 0.005 — half the 0.01 Gbps per-tenant offered load),
//! plus the shared `--shards`, `--parallel` and `--json`. CI smoke-runs
//! `--duration 35 --tenants 64`.

use tse_bench::report::Metric;
use tse_mitigation::guard::{GuardConfig, GuardMitigation};
use tse_mitigation::AdaptiveRekey;
use tse_packet::fields::FieldSchema;
use tse_simnet::fleet::{ChurnConfig, FleetConfig, TenantFleet};
use tse_simnet::offload::OffloadConfig;
use tse_simnet::runner::ExperimentRunner;
use tse_simnet::telemetry::{TelemetryConfig, TelemetryStore};
use tse_switch::datapath::Datapath;
use tse_switch::pmd::{ShardedDatapath, Steering};

const OFFERED_GBPS: f64 = 0.01;
const ATTACK_PPS: f64 = 1200.0;
const HOT_CAPACITY: usize = 120;

struct VariantSummary {
    tag: &'static str,
    tenants_violated: u64,
    violation_seconds: f64,
    worst_recovery_seconds: f64,
    detect_seconds: f64,
    hit_p50_gbps: f64,
    best_p50_gbps: f64,
    background_pps: f64,
    footprint_units: u64,
    rekeys: u64,
}

fn run_variant(
    tag: &'static str,
    args: &tse_bench::FigArgs,
    fleet: &TenantFleet,
    slo_gbps: f64,
    defended: bool,
) -> VariantSummary {
    let sharded = ShardedDatapath::from_builder(
        Datapath::builder(fleet.table()).with_executor(args.executor()),
        args.shard_count(),
        Steering::PerTenant,
    );
    let mut runner = ExperimentRunner::sharded(sharded, Vec::new(), OffloadConfig::gro_off())
        .with_telemetry(TelemetryConfig::with_hot_capacity(HOT_CAPACITY).with_slo_floor(slo_gbps))
        .with_table_updates(fleet.table_updates());
    if defended {
        runner = runner
            .with_mitigation(AdaptiveRekey::new(30.0, ATTACK_PPS * 0.25, 7))
            .with_mitigation(GuardMitigation::new(GuardConfig {
                interval: 10.0,
                mask_threshold: 100,
                ..GuardConfig::default()
            }));
    }
    let sample_interval = runner.sample_interval;
    let timeline = runner.run_mix(fleet.mix(sample_interval), args.duration);
    let store = runner.take_telemetry().expect("run_mix records telemetry");

    // The bounded-memory claim, asserted on the real run: the retained footprint
    // never exceeds the config-determined ceiling, whatever the horizon. The guard
    // logs at most one sweep per shard per interval, the rekey at most one action.
    let max_actions = args.shard_count() + 1;
    assert!(
        store.footprint_units() <= store.footprint_ceiling(max_actions),
        "telemetry footprint {} exceeds ceiling {}",
        store.footprint_units(),
        store.footprint_ceiling(max_actions)
    );

    let rekeys = timeline
        .samples
        .iter()
        .flat_map(|s| s.mitigation_actions.iter())
        .filter(|a| matches!(a, tse_mitigation::MitigationAction::Rekeyed { .. }))
        .count() as u64;

    summarize(tag, fleet, &store, rekeys)
}

fn summarize(
    tag: &'static str,
    fleet: &TenantFleet,
    store: &TelemetryStore,
    rekeys: u64,
) -> VariantSummary {
    let trackers = store.slo_trackers();
    let violated: Vec<_> = trackers.iter().filter(|t| t.episode_count() > 0).collect();
    let tenants_violated = violated.len() as u64;
    let violation_seconds: f64 = trackers.iter().map(|t| t.total_violation_seconds()).sum();
    let worst_recovery_seconds = trackers
        .iter()
        .map(|t| t.longest_episode_seconds())
        .fold(0.0f64, f64::max);
    // Tenant-visible time-to-detect: the first violation episode opening at or after
    // the first attack onset, across the fleet. (`first_violation` won't do here —
    // table-update revalidation storms can trip tenants before any attack starts.)
    let onset = fleet.attack_onset(0);
    let detect_seconds = trackers
        .iter()
        .flat_map(|t| t.episodes().iter())
        .filter(|(start, _)| *start >= onset)
        .map(|(start, _)| start - onset)
        .fold(f64::INFINITY, f64::min);
    let detect_seconds = if detect_seconds.is_finite() {
        detect_seconds
    } else {
        -1.0
    };
    // Delivered p50 of the worst-hit tenant vs. the best-off tenant in the fleet.
    let hit_p50_gbps = violated
        .iter()
        .max_by(|a, b| {
            a.total_violation_seconds()
                .total_cmp(&b.total_violation_seconds())
        })
        .map(|t| t.p50_gbps())
        .unwrap_or(0.0);
    let best_p50_gbps = trackers.iter().map(|t| t.p50_gbps()).fold(0.0f64, f64::max);

    println!("\n-- {tag} --");
    println!(
        "samples recorded {} (hot {}, aged out {}), telemetry footprint {} scalar slots",
        store.samples_recorded(),
        store.hot_len(),
        store.aged_out(),
        store.footprint_units()
    );
    println!(
        "tenants violating SLO: {tenants_violated}, total violation time {violation_seconds:.0} s, \
         worst recovery {worst_recovery_seconds:.0} s, first detection {detect_seconds:.0} s after onset"
    );
    println!(
        "delivered p50: worst-hit tenant {hit_p50_gbps:.4} Gbps vs best tenant {best_p50_gbps:.4} Gbps"
    );
    println!(
        "background churn mean {:.0} pps, total attack mean {:.0} pps, rekeys {rekeys}",
        store.background_series().mean(),
        store.total_attacker_series().mean()
    );
    for t in violated.iter().take(4) {
        println!(
            "  {}: {} episodes, {:.0} s below floor, p50 {:.4} / p99-low {:.4} Gbps",
            t.name(),
            t.episode_count(),
            t.total_violation_seconds(),
            t.p50_gbps(),
            t.p99_gbps()
        );
    }

    VariantSummary {
        tag,
        tenants_violated,
        violation_seconds,
        worst_recovery_seconds,
        detect_seconds,
        hit_p50_gbps,
        best_p50_gbps,
        background_pps: store.background_series().mean(),
        footprint_units: store.footprint_units(),
        rekeys,
    }
}

fn metrics_of(v: &VariantSummary) -> Vec<Metric> {
    let t = v.tag;
    vec![
        Metric::deterministic(
            &format!("{t}/tenants_violated"),
            "tenants",
            v.tenants_violated as f64,
        ),
        Metric::deterministic(
            &format!("{t}/violation_seconds"),
            "seconds",
            v.violation_seconds,
        ),
        Metric::deterministic(
            &format!("{t}/worst_recovery_seconds"),
            "seconds",
            v.worst_recovery_seconds,
        ),
        Metric::deterministic(&format!("{t}/detect_seconds"), "seconds", v.detect_seconds),
        Metric::deterministic(&format!("{t}/hit_p50_gbps"), "gbps", v.hit_p50_gbps)
            .higher_is_better(),
        Metric::deterministic(&format!("{t}/best_p50_gbps"), "gbps", v.best_p50_gbps)
            .higher_is_better(),
        Metric::deterministic(&format!("{t}/background_pps"), "pps", v.background_pps),
        Metric::deterministic(
            &format!("{t}/telemetry_footprint_units"),
            "scalar_slots",
            v.footprint_units as f64,
        ),
        Metric::deterministic(&format!("{t}/rekeys"), "rotations", v.rekeys as f64),
    ]
}

fn main() {
    let args = tse_bench::fig_args_fleet(3600.0, 4, 1000, 0.005);
    let tenants = args.tenants.expect("fleet binary always has --tenants");
    let slo_gbps = args.slo_gbps.expect("fleet binary always has --slo-gbps");
    let schema = FieldSchema::ovs_ipv4();
    let attackers = 3.min(tenants - 1);
    let fleet = TenantFleet::new(
        &schema,
        FleetConfig {
            tenants,
            attackers,
            offered_gbps: OFFERED_GBPS,
            attack_rate_pps: ATTACK_PPS,
            duration: args.duration,
            churn: Some(ChurnConfig::default()),
            seed: 2026,
        },
    );
    println!(
        "== Tenant gateway: {tenants} tenants ({attackers} hostile), {} shards \
         (per-tenant steering, {} executor), {} s horizon, SLO floor {slo_gbps} Gbps ==",
        args.shard_count(),
        args.executor_label(),
        args.duration
    );
    for j in 0..attackers {
        println!(
            "  attacker {j} armed at {:.0} s (ACL update at {:.0} s), {ATTACK_PPS} pps SpDp",
            fleet.attack_onset(j),
            (fleet.attack_onset(j) - 2.0).max(0.0)
        );
    }

    let wall = std::time::Instant::now();
    let open = run_variant("open", &args, &fleet, slo_gbps, false);
    let defended = run_variant("defended", &args, &fleet, slo_gbps, true);

    println!(
        "\n== defense effect: violation time {:.0} s -> {:.0} s, worst recovery {:.0} s -> {:.0} s ==",
        open.violation_seconds,
        defended.violation_seconds,
        open.worst_recovery_seconds,
        defended.worst_recovery_seconds
    );

    let mut metrics = metrics_of(&open);
    metrics.extend(metrics_of(&defended));
    metrics.push(Metric::wall(
        "wall_seconds",
        "seconds_wall",
        wall.elapsed().as_secs_f64(),
    ));
    args.emit(env!("CARGO_BIN_NAME"), metrics);
}
