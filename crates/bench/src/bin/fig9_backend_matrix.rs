//! E-F9-DP: the §7 / Fig. 9 classifier comparison run through the **real datapath**
//! instead of bare classify loops — every [`FastPathBackend`] (TSS plus the three
//! attack-immune baselines) processes the same Co-located attack traces through the
//! full microflow → fast path → slow path pipeline, and the victim's per-invocation
//! cost is read off the datapath itself.
//!
//! The second half replays the Fig. 8a timeline experiment (victims + attacker sharing
//! one switch, sampled per second) over the trie and HyperCuts backends: with an
//! attack-immune fast path the victim's throughput stays at baseline through the whole
//! attack window — the end-to-end form of the paper's mitigation claim.

use tse_attack::colocated::scenario_trace;
use tse_attack::scenarios::Scenario;
use tse_attack::trace::AttackTrace;
use tse_bench::render_table;
use tse_classifier::backend::{
    FastPathBackend, HyperCutsBackend, LinearSearchBackend, TrieBackend,
};
use tse_packet::fields::{FieldSchema, Key};
use tse_simnet::offload::OffloadConfig;
use tse_simnet::runner::ExperimentRunner;
use tse_simnet::traffic::VictimFlow;
use tse_switch::datapath::Datapath;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Victim cost (µs/packet) and fast-path state before and after replaying a scenario's
/// attack trace through a datapath.
struct CaseRow {
    backend: &'static str,
    baseline_us: f64,
    attacked_us: f64,
    masks: usize,
    entries: usize,
}

fn run_case<B: FastPathBackend>(mut dp: Datapath<B>, scenario: Scenario, victim: &Key) -> CaseRow {
    dp.process_key(victim, 1500, 0.0);
    let baseline = dp.process_key(victim, 1500, 0.001);
    let schema = dp.table().schema().clone();
    for (i, key) in scenario_trace(&schema, scenario, &schema.zero_value())
        .iter()
        .enumerate()
    {
        dp.process_key(key, 64, 0.01 + i as f64 * 1e-4);
    }
    let attacked = dp.process_key(victim, 1500, 0.9);
    CaseRow {
        backend: dp.megaflow().name(),
        baseline_us: baseline.cost * 1e6,
        attacked_us: attacked.cost * 1e6,
        masks: dp.mask_count(),
        entries: dp.entry_count(),
    }
}

fn backend_matrix() -> Vec<(Scenario, Vec<CaseRow>)> {
    let schema = FieldSchema::ovs_ipv4();
    let mut out = Vec::new();
    println!("== Fig. 9 through the datapath: victim cost per backend, per use case ==\n");
    for scenario in [
        Scenario::Dp,
        Scenario::SpDp,
        Scenario::SipDp,
        Scenario::SipSpDp,
    ] {
        let table = scenario.flow_table(&schema);
        let mut victim = schema.zero_value();
        victim.set(schema.field_index("tp_dst").unwrap(), 80);

        let rows: Vec<CaseRow> = vec![
            run_case(Datapath::builder(table.clone()).build(), scenario, &victim),
            run_case(
                Datapath::builder(table.clone())
                    .backend_fresh::<LinearSearchBackend>()
                    .build(),
                scenario,
                &victim,
            ),
            run_case(
                Datapath::builder(table.clone())
                    .backend_fresh::<TrieBackend>()
                    .build(),
                scenario,
                &victim,
            ),
            run_case(
                Datapath::builder(table)
                    .backend_fresh::<HyperCutsBackend>()
                    .build(),
                scenario,
                &victim,
            ),
        ];
        println!("-- use case {} --", scenario.name());
        let table_rows: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.backend.to_string(),
                    format!("{:.2}", r.baseline_us),
                    format!("{:.2}", r.attacked_us),
                    format!("{:.1}x", r.attacked_us / r.baseline_us),
                    r.masks.to_string(),
                    r.entries.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &[
                    "backend",
                    "baseline us",
                    "attacked us",
                    "slowdown",
                    "masks",
                    "entries"
                ],
                &table_rows
            )
        );
        out.push((scenario, rows));
    }
    out
}

fn timelines(duration: f64) -> Vec<(&'static str, f64, f64)> {
    let schema = FieldSchema::ovs_ipv4();
    let scenario = Scenario::SipDp;
    let table = scenario.flow_table(&schema);
    let victims = vec![VictimFlow::iperf_tcp(
        "Victim 1",
        0x0a000005,
        0x0a00_0063,
        10.0,
    )];
    let keys = scenario_trace(&schema, scenario, &schema.zero_value());
    let mut rng = StdRng::seed_from_u64(99);
    let attack = AttackTrace::from_keys_cyclic(&mut rng, &schema, &keys, 100.0, 20.0, 3000);

    println!("\n== Fig. 8a-style timelines under attack-immune backends (SipDp, 100 pps) ==");
    let mut trie_runner = ExperimentRunner::new(
        Datapath::builder(table.clone())
            .backend_fresh::<TrieBackend>()
            .build(),
        victims.clone(),
        OffloadConfig::gro_off(),
    );
    let trie_tl = trie_runner.run(&attack, duration);
    println!("\n-- hierarchical tries --");
    println!("{}", trie_tl.render_table());

    let mut hc_runner = ExperimentRunner::new(
        Datapath::builder(table)
            .backend_fresh::<HyperCutsBackend>()
            .build(),
        victims,
        OffloadConfig::gro_off(),
    );
    let hc_tl = hc_runner.run(&attack, duration);
    println!("-- hypercuts --");
    println!("{}", hc_tl.render_table());

    let mut summary = Vec::new();
    for (name, tl) in [("trie", &trie_tl), ("hypercuts", &hc_tl)] {
        let before = tl.mean_total_between(5.0, 19.0);
        let during = tl.mean_total_between(30.0, 49.0);
        println!("{name}: mean victim Gbps before attack {before:.2}, during attack {during:.2}");
        summary.push((name, before, during));
    }
    summary
}

fn main() {
    let args = tse_bench::fig_args_duration(70.0);
    let wall = std::time::Instant::now();
    let cases = backend_matrix();
    let timeline_summary = timelines(args.duration);
    let wall = wall.elapsed().as_secs_f64();

    use tse_bench::report::Metric;
    let mut metrics = Vec::new();
    for (scenario, rows) in &cases {
        for r in rows {
            metrics.push(Metric::deterministic(
                &format!("{}/{}/attacked_us", scenario.name(), r.backend),
                "us_per_packet",
                r.attacked_us,
            ));
            metrics.push(Metric::deterministic(
                &format!("{}/{}/masks", scenario.name(), r.backend),
                "masks",
                r.masks as f64,
            ));
        }
    }
    for (name, before, during) in &timeline_summary {
        metrics.push(
            Metric::deterministic(
                &format!("timeline/{name}/victim_gbps_under_attack"),
                "gbps",
                *during,
            )
            .higher_is_better(),
        );
        metrics.push(
            Metric::deterministic(
                &format!("timeline/{name}/victim_gbps_before"),
                "gbps",
                *before,
            )
            .higher_is_better(),
        );
    }
    metrics.push(Metric::wall("wall_seconds", "seconds_wall", wall));
    args.emit(env!("CARGO_BIN_NAME"), metrics);
}
