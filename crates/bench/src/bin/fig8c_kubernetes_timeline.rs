//! E-F8c: the Kubernetes timeline of Fig. 8c — 1 Gbps virtio link, SipSpDp ACL injected
//! mid-experiment (t2), attack rate stepping from 1 000 to 2 000 pps (t4), with the
//! megaflow count as the secondary series.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tse_attack::colocated::scenario_trace;
use tse_attack::scenarios::Scenario;
use tse_attack::trace::AttackTrace;
use tse_packet::fields::FieldSchema;
use tse_simnet::cloud::CloudPlatform;
use tse_simnet::offload::OffloadConfig;
use tse_simnet::runner::ExperimentRunner;
use tse_simnet::traffic::VictimFlow;
use tse_switch::cost::CostModel;
use tse_switch::datapath::Datapath;

fn main() {
    let args = tse_bench::fig_args_static();
    let platform = CloudPlatform::Kubernetes;
    let schema = FieldSchema::ovs_ipv4();
    let scenario = platform.clamp_scenario(Scenario::SipSpDp);

    // Timeline (matching Fig. 8c): victim iperf from t=0; attacker starts sending at
    // t1=20 s at 1 000 pps against a benign ACL (only the victim's allow rule), injects
    // the malicious ACL at t2=50 s, and doubles the rate to 2 000 pps at t4=100 s.
    let benign_table = Scenario::Baseline.flow_table(&schema);
    let malicious_table = scenario.flow_table(&schema);

    let victims = vec![VictimFlow::iperf_tcp(
        "Victim",
        0x0a000005,
        0x0a000063,
        platform.line_rate_gbps(),
    )];
    let offload = OffloadConfig {
        name: "Kubernetes virtio",
        bytes_per_invocation: 1538,
        line_rate_gbps: platform.line_rate_gbps(),
        cost: CostModel::ovs_kernel_default(),
    };

    let keys = scenario_trace(&schema, scenario, &schema.zero_value());
    let mut rng = StdRng::seed_from_u64(3);

    // Phase 1: t=0..50 s, benign ACL, attacker on from t=20 s at 1 000 pps.
    let wall = std::time::Instant::now();
    let mut runner = ExperimentRunner::new(Datapath::new(benign_table), victims.clone(), offload);
    let attack1 = AttackTrace::from_keys_cyclic(&mut rng, &schema, &keys, 1000.0, 20.0, 30_000);
    let phase1 = runner.run(&attack1, 50.0);

    // Phase 2: ACL injected at t2 = 50 s, attack continues at 1 000 pps until t4 = 100 s.
    runner.datapath.install_table(malicious_table);
    let attack2 = AttackTrace::from_keys_cyclic(&mut rng, &schema, &keys, 1000.0, 0.0, 50_000);
    let phase2 = runner.run(&attack2, 50.0);

    // Phase 3: rate doubled to 2 000 pps from t4 = 100 s to t = 150 s.
    let attack3 = AttackTrace::from_keys_cyclic(&mut rng, &schema, &keys, 2000.0, 0.0, 100_000);
    let phase3 = runner.run(&attack3, 50.0);

    println!("== Fig. 8c: Kubernetes (OVN), SipSpDp, ACL injected at t2=50 s, rate 1k->2k pps at t4=100 s ==\n");
    println!("time_s\tvictim_gbps\tattack_pps\tmfc_masks\tmfc_entries");
    for (offset, phase) in [(0.0, &phase1), (50.0, &phase2), (100.0, &phase3)] {
        for s in &phase.samples {
            println!(
                "{:6.0}\t{:11.3}\t{:10.0}\t{:9}\t{:11}",
                s.time + offset,
                s.total_victim_gbps(),
                s.attacker_pps,
                s.mask_count,
                s.entry_count
            );
        }
    }
    let wall = wall.elapsed().as_secs_f64();
    let benign = phase1.mean_total_between(25.0, 49.0);
    let injected = phase2.mean_total_between(10.0, 49.0);
    let doubled = phase3.mean_total_between(10.0, 49.0);
    println!(
        "\nvictim mean: before ACL injection {benign:.3} Gbps | after injection (1 kpps) {injected:.3} Gbps | at 2 kpps {doubled:.3} Gbps",
    );
    println!("paper: ~1 Gbps baseline, ~80 % drop once the ACL lands, near-zero at 2 000 pps.");

    use tse_bench::report::Metric;
    let peak_masks = [&phase1, &phase2, &phase3]
        .iter()
        .flat_map(|p| p.samples.iter().map(|s| s.mask_count))
        .max()
        .unwrap_or(0);
    args.emit(
        env!("CARGO_BIN_NAME"),
        vec![
            Metric::deterministic("victim_gbps_benign_acl", "gbps", benign).higher_is_better(),
            Metric::deterministic("victim_gbps_acl_injected", "gbps", injected).higher_is_better(),
            Metric::deterministic("victim_gbps_2kpps", "gbps", doubled).higher_is_better(),
            Metric::deterministic("peak_masks", "masks", peak_masks as f64),
            Metric::deterministic(
                "total_cost_seconds",
                "cost_seconds",
                runner.datapath.busy_seconds(),
            ),
            Metric::wall("wall_seconds", "seconds_wall", wall),
        ],
    );
}
