//! E-SHARD: shard-local blast radius on a multi-PMD datapath — the experiment the
//! paper's single-cache model cannot express.
//!
//! Four PMD shards behind RSS steering carry two 10 Gbps victims pinned (by source
//! port) to *different* shards. A co-located SipDp attacker retags her free destination
//! address so every attack packet RSS-targets the shard of "Victim A" (the shard-pinned
//! explosion). Expected shape:
//!
//! * Victim A's timeline collapses exactly like Fig. 8a — its PMD's cache fills with
//!   attack masks and its core burns cycles on them;
//! * Victim B, one shard over, stays at baseline throughout: private cache, private
//!   CPU budget, zero blast radius;
//! * the per-shard mask columns show the explosion confined to the attacked shard.
//!
//! A second run sprays the same attack round-robin over all shards: every per-shard
//! cache fills at 1/4 rate and *both* victims degrade — the whole-switch attack.
//!
//! A third run repeats the pinned attack with a per-shard-configured
//! [`GuardMitigation`] on the runner's `MitigationStack`: only the attacked shard's
//! guard sweeps (under a tightened mask threshold), and Victim A recovers while the
//! other shards' guards never touch their caches.
//!
//! Run with `--duration <s>` (default 70) — CI smoke-runs it short — plus the shared
//! sharded flags: `--shards <n>` (default 4) sets the PMD count and `--parallel
//! <threads>` drives the per-shard fan-out from a thread pool (CI exercises
//! `--parallel 4`; the timelines are bit-for-bit identical to the sequential run's).

use rand::rngs::StdRng;
use rand::SeedableRng;
use tse_attack::scenarios::Scenario;
use tse_attack::sharding::{pin_to_shard, spray_shards, ShardSteeredKeys};
use tse_attack::source::{AttackGenerator, TrafficMix};
use tse_attack::BitInversionKeys;
use tse_mitigation::guard::{GuardConfig, GuardMitigation};
use tse_mitigation::stack::MitigationAction;
use tse_packet::fields::FieldSchema;
use tse_simnet::offload::OffloadConfig;
use tse_simnet::runner::{ExperimentRunner, Timeline};
use tse_simnet::traffic::{VictimFlow, VictimSource};
use tse_switch::datapath::Datapath;
use tse_switch::pmd::{ShardedDatapath, Steering};

const ATTACK_START: f64 = 20.0;
const ATTACK_PPS: f64 = 100.0;

/// A victim whose source port steers its 5-tuple to `shard`. The victims offer 4 Gbps
/// each so the 10 Gbps NIC is never the bottleneck — what moves a victim's throughput
/// is purely its own shard's CPU.
fn victim_on_shard(
    name: &str,
    src_ip: u32,
    schema: &FieldSchema,
    n_shards: usize,
    shard: usize,
) -> VictimFlow {
    VictimFlow::iperf_tcp(name, src_ip, 0x0a00_0063, 4.0).steered_to_shard(
        schema,
        Steering::Rss,
        n_shards,
        shard,
    )
}

/// The SipDp co-located key stream with the base fields the crafted packets will carry
/// (TCP protocol, the attacker's own service as destination — the RSS-free field).
fn attack_keys(schema: &FieldSchema) -> BitInversionKeys {
    let mut base = schema.zero_value();
    base.set(schema.field_index("ip_proto").unwrap(), 6);
    base.set(schema.field_index("ip_dst").unwrap(), 0x0a00_00c8);
    Scenario::SipDp.key_iter(schema, &base)
}

fn run(
    schema: &FieldSchema,
    args: &tse_bench::FigArgs,
    victims: &[VictimFlow],
    keys: ShardSteeredKeys<std::iter::Cycle<BitInversionKeys>>,
    guard: Option<GuardMitigation>,
) -> (Timeline, f64) {
    let duration = args.duration;
    let table = Scenario::SipDp.flow_table(schema);
    let sharded = ShardedDatapath::from_builder(
        Datapath::builder(table).with_executor(args.executor()),
        args.shard_count(),
        Steering::Rss,
    );
    let mut runner = ExperimentRunner::sharded(sharded, Vec::new(), OffloadConfig::gro_off());
    if let Some(guard) = guard {
        runner = runner.with_mitigation(guard);
    }
    let mut mix = TrafficMix::new();
    for flow in victims {
        mix.push(Box::new(VictimSource::new(
            flow.clone(),
            schema,
            runner.sample_interval,
        )));
    }
    let packets = ((duration - ATTACK_START).max(1.0) * ATTACK_PPS) as usize;
    mix.push(Box::new(
        AttackGenerator::new(
            "Attacker",
            schema,
            keys,
            StdRng::seed_from_u64(99),
            ATTACK_PPS,
            ATTACK_START,
        )
        .with_limit(packets),
    ));
    let timeline = runner.run_mix(mix, duration);
    let busy = runner.datapath.busy_seconds();
    (timeline, busy)
}

/// Per-victim (before, during) Gbps means plus the peak per-shard mask count.
fn summarize(label: &str, tl: &Timeline, duration: f64) -> (Vec<(f64, f64)>, usize) {
    let before_end = ATTACK_START - 1.0;
    let during_start = ATTACK_START + 10.0;
    let during_end = duration.min(during_start + 30.0);
    println!("\n-- {label} --");
    println!("{}", tl.render_table());
    let mut victim_means = Vec::new();
    for (i, name) in tl.victim_names.iter().enumerate() {
        let mean = |start: f64, stop: f64| {
            let vals: Vec<f64> = tl
                .samples
                .iter()
                .filter(|s| s.time >= start && s.time < stop)
                .map(|s| s.victim_gbps[i])
                .collect();
            vals.iter().sum::<f64>() / vals.len().max(1) as f64
        };
        let (before, during) = (mean(5.0, before_end), mean(during_start, during_end));
        println!("{label}: {name} mean Gbps before {before:.2}, during attack {during:.2}",);
        victim_means.push((before, during));
    }
    let peak: Vec<usize> = (0..tl.shard_count)
        .map(|s| {
            tl.samples
                .iter()
                .map(|x| x.shard_masks[s])
                .max()
                .unwrap_or(0)
        })
        .collect();
    println!("{label}: peak masks per shard {peak:?}");
    let mut swept_per_shard = vec![0usize; tl.shard_count];
    for s in &tl.samples {
        for a in &s.mitigation_actions {
            if let MitigationAction::GuardSweep(r) = a {
                swept_per_shard[r.shard] += r.entries_removed;
            }
        }
    }
    if swept_per_shard.iter().any(|&n| n > 0) {
        println!("{label}: guard-swept entries per shard {swept_per_shard:?}");
    }
    (victim_means, peak.iter().copied().max().unwrap_or(0))
}

/// Wall-clock microbenchmark of the batched datapath entry point: one pre-generated
/// attack+victim event batch through [`ShardedDatapath::process_timed_batch`],
/// reported as packets/s and megaflow installs (upcalls)/s of real time. The batch
/// outcome itself (upcalls, simulated cost) is deterministic; only the rates are
/// machine-dependent.
fn batch_microbench(
    schema: &FieldSchema,
    args: &tse_bench::FigArgs,
) -> Vec<tse_bench::report::Metric> {
    use tse_bench::report::Metric;
    let n_shards = args.shard_count();
    let table = Scenario::SipDp.flow_table(schema);
    let mut sharded = ShardedDatapath::from_builder(
        Datapath::builder(table).with_executor(args.executor()),
        n_shards,
        Steering::Rss,
    );
    let ip_dst = schema.field_index("ip_dst").unwrap();
    let victim = victim_on_shard("bench victim", 0x0a00_0005, schema, n_shards, 0);
    let victim_key = victim.key(schema);
    let mut batch: Vec<(tse_packet::fields::Key, usize, f64)> = Vec::new();
    let mut attack = spray_shards(schema, attack_keys(schema).cycle(), ip_dst, n_shards);
    for i in 0..50_000usize {
        let t = i as f64 * 1e-5;
        if i % 10 == 0 {
            if let Some(key) = attack.next() {
                batch.push((key, 64, t));
            }
        } else {
            batch.push((victim_key.clone(), 1500, t));
        }
    }
    let wall = std::time::Instant::now();
    let report = sharded.process_timed_batch(&batch).aggregate();
    let wall = wall.elapsed().as_secs_f64().max(1e-9);
    println!(
        "\n-- batch microbench: {} events through process_timed_batch in {:.3} s ({:.2} Mpps, {} upcalls) --",
        report.processed,
        wall,
        report.processed as f64 / wall / 1e6,
        report.upcalls,
    );
    vec![
        Metric::deterministic("batch/upcalls", "packets", report.upcalls as f64),
        Metric::deterministic("batch/cost_seconds", "cost_seconds", report.total_cost),
        Metric::wall(
            "batch/mpps",
            "mpps_wall",
            report.processed as f64 / wall / 1e6,
        )
        .higher_is_better(),
        Metric::wall(
            "batch/installs_per_sec",
            "installs_per_sec_wall",
            report.upcalls as f64 / wall,
        )
        .higher_is_better(),
    ]
}

fn main() {
    let args = tse_bench::fig_args(70.0, 4);
    let (duration, n_shards) = (args.duration, args.shard_count());
    let schema = FieldSchema::ovs_ipv4();
    let ip_dst = schema.field_index("ip_dst").unwrap();

    // Victim B sits "half a ring" away from the attacked shard 0 (shard 2 in the
    // default 4-shard setup), so its shard is never the pinned target — which needs at
    // least two shards to be possible at all.
    assert!(
        n_shards >= 2,
        "the blast-radius comparison needs --shards >= 2 (victim B must live off the attacked shard)"
    );
    let b_shard = (n_shards / 2).max(1);
    let victim_a = victim_on_shard("Victim A", 0x0a00_0005, &schema, n_shards, 0);
    let victim_b = victim_on_shard("Victim B", 0x0a00_0006, &schema, n_shards, b_shard);
    let victims = [victim_a, victim_b];
    println!(
        "== Shard blast radius: {n_shards} PMD shards (RSS, {} executor), SipDp @ {ATTACK_PPS} pps from t={ATTACK_START} s ==",
        args.executor_label()
    );
    println!("Victim A pinned to shard 0 (attacked); Victim B pinned to shard {b_shard}.");

    use tse_bench::report::Metric;
    let mut metrics = Vec::new();
    let mut total_cost = 0.0;
    let wall = std::time::Instant::now();
    let mut record = |tag: &str, means: &[(f64, f64)], peak_masks: usize, busy: f64| {
        total_cost += busy;
        for ((before, during), victim) in means.iter().zip(["victim_a", "victim_b"]) {
            metrics.push(
                Metric::deterministic(&format!("{tag}/{victim}_gbps_before"), "gbps", *before)
                    .higher_is_better(),
            );
            metrics.push(
                Metric::deterministic(
                    &format!("{tag}/{victim}_gbps_under_attack"),
                    "gbps",
                    *during,
                )
                .higher_is_better(),
            );
        }
        metrics.push(Metric::deterministic(
            &format!("{tag}/peak_shard_masks"),
            "masks",
            peak_masks as f64,
        ));
    };

    // Shard-pinned explosion: every attack packet retagged onto Victim A's shard.
    let pinned = pin_to_shard(&schema, attack_keys(&schema).cycle(), ip_dst, n_shards, 0);
    let (tl, busy) = run(&schema, &args, &victims, pinned, None);
    let (means, peak) = summarize("shard-pinned attack (shard 0)", &tl, duration);
    record("pinned", &means, peak, busy);

    // Spray: the same stream spread round-robin over every shard.
    let sprayed = spray_shards(&schema, attack_keys(&schema).cycle(), ip_dst, n_shards);
    let (tl, busy) = run(&schema, &args, &victims, sprayed, None);
    let (means, peak) = summarize("sprayed attack (all shards)", &tl, duration);
    record("sprayed", &means, peak, busy);

    // Pinned again, defended: a per-shard-configured guard on the mitigation stack —
    // the attacked shard sweeps under a tightened threshold, every other shard's guard
    // is left at the default (and never fires: their caches stay tiny).
    let pinned = pin_to_shard(&schema, attack_keys(&schema).cycle(), ip_dst, n_shards, 0);
    let guard = GuardMitigation::new(GuardConfig::default()).with_shard_config(
        0,
        GuardConfig {
            mask_threshold: 30,
            ..GuardConfig::default()
        },
    );
    let (tl, busy) = run(&schema, &args, &victims, pinned, Some(guard));
    let (means, peak) = summarize("shard-pinned attack + per-shard guard", &tl, duration);
    record("pinned+guard", &means, peak, busy);

    metrics.push(Metric::deterministic(
        "total_cost_seconds",
        "cost_seconds",
        total_cost,
    ));
    metrics.push(Metric::wall(
        "wall_seconds",
        "seconds_wall",
        wall.elapsed().as_secs_f64(),
    ));
    metrics.extend(batch_microbench(&schema, &args));
    args.emit(env!("CARGO_BIN_NAME"), metrics);
}
