//! E-T41/E-T42: the Theorem 4.1 / 4.2 space–time trade-off curves, plus the measured
//! mask/entry counts of the chunked generation strategies that realise them.

use tse_attack::bounds::{multi_field_bound, single_field_curve};
use tse_bench::render_table;
use tse_classifier::flowtable::FlowTable;
use tse_classifier::strategy::{generate_megaflow, MegaflowStrategy};
use tse_classifier::tss::TupleSpace;
use tse_packet::fields::{FieldDef, FieldSchema, Key};

fn main() {
    let args = tse_bench::fig_args_static();
    println!("== Theorem 4.1: single 16-bit field (e.g. a TCP port) ==\n");
    let rows: Vec<Vec<String>> = single_field_curve(16)
        .iter()
        .filter(|p| [1, 2, 4, 8, 16].contains(&(p.masks as u32)))
        .map(|p| vec![format!("{}", p.masks), format!("{:.0}", p.entries)])
        .collect();
    println!(
        "{}",
        render_table(&["k (masks, time)", "entries (space)"], &rows)
    );

    println!("\n== Theorem 4.2: the Fig. 6 fields (32 + 16 + 16 bits) ==\n");
    let widths = [32u32, 16, 16];
    let rows: Vec<Vec<String>> = [[1u32, 1, 1], [4, 4, 4], [8, 8, 8], [16, 8, 8], [32, 16, 16]]
        .iter()
        .map(|ks| {
            let (time, space) = multi_field_bound(&widths, ks);
            vec![
                format!("{ks:?}"),
                format!("{time:.0}"),
                format!("{space:.3e}"),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["k_i", "lookup masks (time)", "entries (space)"], &rows)
    );

    println!("\n== Measured: chunked generation strategies on a 12-bit field ==\n");
    let width = 12u32;
    let schema = FieldSchema::new(vec![FieldDef::new("f", width)]);
    let table = FlowTable::whitelist_default_deny(&schema, &[(0, 0xABC)]);
    let mut rows = Vec::new();
    let mut metrics = Vec::new();
    for chunk in [1u32, 2, 3, 4, 6, 12] {
        let strategy = MegaflowStrategy::chunked(&schema, chunk);
        let mut cache = TupleSpace::new(schema.clone());
        for v in 0..(1u128 << width) {
            let h = Key::from_values(&schema, &[v]);
            if cache.lookup(&h, 0.0).action.is_some() {
                continue;
            }
            if let Ok(g) = generate_megaflow(&table, &cache, &h, &strategy) {
                cache.insert(g.key, g.mask, g.action, 0.0).unwrap();
            }
        }
        rows.push(vec![
            format!("{chunk}"),
            format!("{}", width.div_ceil(chunk)),
            format!("{}", cache.mask_count()),
            format!("{}", cache.entry_count()),
        ]);
        use tse_bench::report::Metric;
        metrics.push(Metric::deterministic(
            &format!("chunk{chunk}/masks"),
            "masks",
            cache.mask_count() as f64,
        ));
        metrics.push(Metric::deterministic(
            &format!("chunk{chunk}/entries"),
            "entries",
            cache.entry_count() as f64,
        ));
    }
    println!(
        "{}",
        render_table(
            &[
                "chunk bits",
                "k = ceil(w/c)",
                "measured masks",
                "measured entries"
            ],
            &rows
        )
    );
    args.emit(env!("CARGO_BIN_NAME"), metrics);
}
