//! E-F8a: the synthetic timeline of Fig. 8a — three concurrent TCP victim flows, the
//! SipDp Co-located attack at 100 pps between t1 = 30 s and t2 = 60 s, victim recovery
//! ~10 s after the attack stops (the megaflow idle timeout).

use rand::rngs::StdRng;
use rand::SeedableRng;
use tse_attack::colocated::scenario_trace;
use tse_attack::scenarios::Scenario;
use tse_attack::trace::AttackTrace;
use tse_packet::fields::FieldSchema;
use tse_simnet::offload::OffloadConfig;
use tse_simnet::runner::ExperimentRunner;
use tse_simnet::traffic::VictimFlow;
use tse_switch::datapath::Datapath;

fn main() {
    let args = tse_bench::fig_args_duration(90.0);
    let duration = args.duration;
    let schema = FieldSchema::ovs_ipv4();
    let table = Scenario::SipDp.flow_table(&schema);
    let victims = vec![
        VictimFlow::iperf_tcp("Victim 1", 0x0a000005, 0x0a000063, 10.0).with_src_port(40001),
        VictimFlow::iperf_tcp("Victim 2", 0x0a000006, 0x0a000063, 10.0).with_src_port(40002),
        VictimFlow::iperf_tcp("Victim 3", 0x0a000007, 0x0a000063, 10.0).with_src_port(40003),
    ];
    // Attack: 100 pps from t1 = 30 s for 30 s (3000 packets), cycling the SipDp trace.
    let keys = scenario_trace(&schema, Scenario::SipDp, &schema.zero_value());
    let mut rng = StdRng::seed_from_u64(8);
    let attack = AttackTrace::from_keys_cyclic(&mut rng, &schema, &keys, 100.0, 30.0, 3000);

    let mut runner = ExperimentRunner::new(Datapath::new(table), victims, OffloadConfig::gro_off());
    let wall = std::time::Instant::now();
    let timeline = runner.run(&attack, duration);
    let wall = wall.elapsed().as_secs_f64();
    println!("== Fig. 8a: synthetic timeline, 3 TCP victims, SipDp attack @100 pps, t1=30 s t2=60 s ==\n");
    println!("{}", timeline.render_table());
    let before = timeline.mean_total_between(5.0, 29.0);
    let during = timeline.mean_total_between(40.0, 59.0);
    let after = timeline.mean_total_between(75.0, 89.0);
    println!(
        "aggregate victim rate: before attack {before:.2} Gbps | under attack {during:.2} Gbps | after recovery {after:.2} Gbps",
    );
    println!("paper: 9.7 Gbps aggregate drops below 0.5 Gbps during the attack; recovery lags t2 by ~10 s");

    use tse_bench::report::Metric;
    let peak_masks = timeline
        .samples
        .iter()
        .map(|s| s.mask_count)
        .max()
        .unwrap_or(0);
    let peak_entries = timeline
        .samples
        .iter()
        .map(|s| s.entry_count)
        .max()
        .unwrap_or(0);
    args.emit(
        env!("CARGO_BIN_NAME"),
        vec![
            Metric::deterministic("victim_gbps_before", "gbps", before).higher_is_better(),
            Metric::deterministic("victim_gbps_under_attack", "gbps", during).higher_is_better(),
            Metric::deterministic("victim_gbps_recovered", "gbps", after).higher_is_better(),
            Metric::deterministic("peak_masks", "masks", peak_masks as f64),
            Metric::deterministic("peak_entries", "entries", peak_entries as f64),
            Metric::deterministic(
                "total_cost_seconds",
                "cost_seconds",
                runner.datapath.busy_seconds(),
            ),
            Metric::wall("wall_seconds", "seconds_wall", wall),
        ],
    );
}
