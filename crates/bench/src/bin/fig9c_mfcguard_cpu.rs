//! E-F9c: MFCGuard's cost — slow-path (ovs-vswitchd) CPU utilisation as a function of
//! the attack packet rate once the guard keeps adversarial traffic out of the fast path.

use tse_bench::render_table;
use tse_mitigation::cpu_model::SlowPathCpuModel;

fn main() {
    let model = SlowPathCpuModel::ovs_vswitchd_default();
    println!("== Fig. 9c: slow-path CPU usage vs. attack rate (MFCGuard active) ==\n");
    let rows: Vec<Vec<String>> = [
        10.0f64, 100.0, 1_000.0, 5_000.0, 10_000.0, 20_000.0, 50_000.0,
    ]
    .iter()
    .map(|&rate| {
        vec![
            format!("{rate:.0}"),
            format!("{:.1} %", model.utilization_percent(rate)),
        ]
    })
    .collect();
    println!(
        "{}",
        render_table(&["attack rate [pps]", "ovs-vswitchd CPU"], &rows)
    );
    println!("\npaper anchors: ~15 % at 1 000 pps, ~80 % at 10 000 pps, saturating ~250 % towards 50 000 pps");
}
