//! E-F9c: MFCGuard's cost — slow-path (ovs-vswitchd) CPU utilisation as a function of
//! the attack packet rate once the guard keeps adversarial traffic out of the fast path.
//!
//! Two halves:
//!
//! 1. a guarded timeline per attack rate, run through the composable
//!    `MitigationStack` API ([`GuardMitigation`] attached with
//!    `ExperimentRunner::with_mitigation`): the victim keeps its throughput while the
//!    guard's sweeps — surfaced as [`MitigationAction::GuardSweep`] in the timeline —
//!    report the projected slow-path CPU the balancing exit of Alg. 2 reasons about;
//! 2. the bare calibrated CPU model, the analytic curve of Fig. 9c.
//!
//! Run with `--duration <s>` (default 60) — CI smoke-runs it short.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tse_attack::scenarios::Scenario;
use tse_attack::source::{AttackGenerator, TrafficMix};
use tse_bench::render_table;
use tse_mitigation::cpu_model::SlowPathCpuModel;
use tse_mitigation::guard::{GuardConfig, GuardMitigation};
use tse_mitigation::stack::MitigationAction;
use tse_packet::fields::FieldSchema;
use tse_simnet::offload::OffloadConfig;
use tse_simnet::runner::ExperimentRunner;
use tse_simnet::traffic::{VictimFlow, VictimSource};
use tse_switch::datapath::Datapath;

const ATTACK_START: f64 = 10.0;

fn main() {
    let args = tse_bench::fig_args_duration(60.0);
    let duration = args.duration;
    let schema = FieldSchema::ovs_ipv4();
    let scenario = Scenario::SipDp;
    let wall = std::time::Instant::now();
    let mut metrics = Vec::new();

    println!("== Fig. 9c: slow-path CPU usage vs. attack rate (MFCGuard active) ==\n");
    println!("-- guarded timelines (MitigationStack: one GuardMitigation stage) --");
    let mut rows = Vec::new();
    for rate in [100.0f64, 1_000.0, 5_000.0] {
        let mut runner = ExperimentRunner::new(
            Datapath::new(scenario.flow_table(&schema)),
            Vec::new(),
            OffloadConfig::gro_off(),
        )
        .with_mitigation(GuardMitigation::new(GuardConfig::default()));
        let mix = TrafficMix::new()
            .with(VictimSource::new(
                VictimFlow::iperf_tcp("victim", 0x0a00_0005, 0x0a00_0063, 10.0),
                &schema,
                runner.sample_interval,
            ))
            .with(
                AttackGenerator::new(
                    "attacker",
                    &schema,
                    scenario.key_iter(&schema, &schema.zero_value()).cycle(),
                    StdRng::seed_from_u64(9),
                    rate,
                    ATTACK_START,
                )
                .with_limit(((duration - ATTACK_START).max(1.0) * rate) as usize),
            );
        let tl = runner.run_mix(mix, duration);
        let during_end = duration - 1.0;
        let victim_during = tl.mean_total_between(ATTACK_START + 5.0, during_end);
        let (mut sweeps, mut swept_entries, mut peak_cpu) = (0u64, 0usize, 0.0f64);
        for s in &tl.samples {
            for a in &s.mitigation_actions {
                if let MitigationAction::GuardSweep(r) = a {
                    peak_cpu = peak_cpu.max(r.projected_cpu_percent);
                    if r.entries_removed > 0 {
                        sweeps += 1;
                        swept_entries += r.entries_removed;
                    }
                }
            }
        }
        rows.push(vec![
            format!("{rate:.0}"),
            format!("{victim_during:5.2}"),
            format!("{sweeps}"),
            format!("{swept_entries}"),
            format!("{peak_cpu:6.1} %"),
        ]);
        use tse_bench::report::Metric;
        metrics.push(
            Metric::deterministic(
                &format!("guarded/{rate:.0}pps/victim_gbps"),
                "gbps",
                victim_during,
            )
            .higher_is_better(),
        );
        metrics.push(Metric::deterministic(
            &format!("guarded/{rate:.0}pps/swept_entries"),
            "entries",
            swept_entries as f64,
        ));
        metrics.push(Metric::deterministic(
            &format!("guarded/{rate:.0}pps/peak_slow_path_cpu"),
            "percent",
            peak_cpu,
        ));
    }
    println!(
        "{}",
        render_table(
            &[
                "attack rate [pps]",
                "victim Gbps",
                "sweeps",
                "entries wiped",
                "projected slow-path CPU",
            ],
            &rows,
        )
    );

    println!("-- calibrated ovs-vswitchd CPU model --");
    let model = SlowPathCpuModel::ovs_vswitchd_default();
    let rows: Vec<Vec<String>> = [
        10.0f64, 100.0, 1_000.0, 5_000.0, 10_000.0, 20_000.0, 50_000.0,
    ]
    .iter()
    .map(|&rate| {
        vec![
            format!("{rate:.0}"),
            format!("{:.1} %", model.utilization_percent(rate)),
        ]
    })
    .collect();
    println!(
        "{}",
        render_table(&["attack rate [pps]", "ovs-vswitchd CPU"], &rows)
    );
    println!("\npaper anchors: ~15 % at 1 000 pps, ~80 % at 10 000 pps, saturating ~250 % towards 50 000 pps");

    use tse_bench::report::Metric;
    for rate in [1_000.0f64, 10_000.0, 50_000.0] {
        metrics.push(Metric::deterministic(
            &format!("cpu_model/{rate:.0}pps"),
            "percent",
            model.utilization_percent(rate),
        ));
    }
    metrics.push(Metric::wall(
        "wall_seconds",
        "seconds_wall",
        wall.elapsed().as_secs_f64(),
    ));
    args.emit(env!("CARGO_BIN_NAME"), metrics);
}
