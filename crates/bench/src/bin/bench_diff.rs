//! Compare two benchmark report files — the CI regression gate.
//!
//! ```text
//! bench_diff <baseline.json> <new.json> [--wall-tolerance <percent>]
//! ```
//!
//! Deterministic metrics (cost-model units, mask/entry counts) must match the
//! baseline bit-for-bit: any drift — in either direction — exits nonzero, because an
//! unexplained improvement means a stale baseline just as much as a regression means
//! broken code. Wall-clock metrics (`*_wall` units) only warn when they regress past
//! the tolerance band (default 25 %), since CI wall clocks are noisy.
//!
//! Exit status: 0 clean (warnings allowed), 1 deterministic drift, 2 usage/IO error.

use std::path::PathBuf;
use std::process::exit;

use tse_bench::report::{diff_files, DiffConfig, ReportFile};

const USAGE: &str = "usage: bench_diff <baseline.json> <new.json> [--wall-tolerance <percent>]";

fn main() {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut cfg = DiffConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let tolerance = if a == "--wall-tolerance" {
            Some(args.next().unwrap_or_else(|| {
                eprintln!("error: --wall-tolerance needs a value\n{USAGE}");
                exit(2);
            }))
        } else {
            a.strip_prefix("--wall-tolerance=").map(str::to_string)
        };
        if let Some(v) = tolerance {
            cfg.wall_tolerance_percent = v.parse().unwrap_or_else(|e| {
                eprintln!("error: bad --wall-tolerance {v:?}: {e}\n{USAGE}");
                exit(2);
            });
            if !cfg.wall_tolerance_percent.is_finite() || cfg.wall_tolerance_percent < 0.0 {
                eprintln!("error: --wall-tolerance must be a non-negative percent\n{USAGE}");
                exit(2);
            }
        } else if a.starts_with("--") {
            eprintln!("error: unknown argument {a:?}\n{USAGE}");
            exit(2);
        } else {
            paths.push(PathBuf::from(a));
        }
    }
    let [old_path, new_path] = paths.as_slice() else {
        eprintln!("{USAGE}");
        exit(2);
    };

    let load = |path: &PathBuf| {
        ReportFile::load(path).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            exit(2);
        })
    };
    let (old, new) = (load(old_path), load(new_path));

    println!(
        "comparing {} (baseline) vs {} ({} report(s) each side, area {:?})",
        old_path.display(),
        new_path.display(),
        old.reports.len().max(new.reports.len()),
        new.area,
    );
    let diff = diff_files(&old, &new, &cfg);
    print!("{}", diff.render());
    if diff.has_failures() {
        eprintln!("error: deterministic metrics drifted from the baseline");
        exit(1);
    }
}
