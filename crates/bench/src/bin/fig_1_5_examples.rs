//! E-F1..F5: print the paper's teaching examples — the Fig. 1 flow table, the Fig. 2
//! exact-match MFC, the Fig. 3 wildcarded MFC, the Fig. 4 two-field ACL and its Fig. 5
//! megaflow cache.

use tse_classifier::flowtable::FlowTable;
use tse_classifier::strategy::{generate_megaflow, GenerationError, MegaflowStrategy};
use tse_classifier::tss::TupleSpace;
use tse_packet::fields::{FieldSchema, Key};

fn populate(
    table: &FlowTable,
    strategy: &MegaflowStrategy,
    headers: impl Iterator<Item = Key>,
) -> TupleSpace {
    let mut cache = TupleSpace::new(table.schema().clone());
    for h in headers {
        if cache.lookup(&h, 0.0).action.is_some() {
            continue;
        }
        match generate_megaflow(table, &cache, &h, strategy) {
            Ok(g) => {
                cache.insert(g.key, g.mask, g.action, 0.0).unwrap();
            }
            Err(GenerationError::AlreadyCovered) => {}
            Err(e) => panic!("{e}"),
        }
    }
    cache
}

fn main() {
    let args = tse_bench::fig_args_static();
    let hyp = FieldSchema::hyp();

    println!("== Fig. 1: sample flow table (3-bit HYP) ==");
    let fig1 = FlowTable::fig1_hyp();
    println!("{}\n", fig1.render());

    println!("== Fig. 2: exact-match MFC construction ==");
    let exact = populate(
        &fig1,
        &MegaflowStrategy::exact_match(&hyp),
        (0..8u128).map(|v| Key::from_values(&hyp, &[v])),
    );
    println!("{}", exact.render());
    println!(
        "-> {} entries, {} mask(s)\n",
        exact.entry_count(),
        exact.mask_count()
    );

    println!("== Fig. 3: wildcarding MFC construction (adversarial trace 001,101,011,000) ==");
    let wild = populate(
        &fig1,
        &MegaflowStrategy::wildcarding(&hyp),
        [0b001u128, 0b101, 0b011, 0b000]
            .into_iter()
            .map(|v| Key::from_values(&hyp, &[v])),
    );
    println!("{}", wild.render());
    println!(
        "-> {} entries, {} mask(s)\n",
        wild.entry_count(),
        wild.mask_count()
    );

    println!("== Fig. 4: two-field ACL (HYP 3 bits, HYP2 4 bits) ==");
    let fig4 = FlowTable::fig4_hyp2();
    println!("{}\n", fig4.render());

    println!("== Fig. 5: corresponding MFC under wildcarding (whole header space) ==");
    let hyp2 = FieldSchema::hyp2();
    let all = (0..8u128).flat_map(|a| (0..16u128).map(move |b| (a, b)));
    let fig5 = populate(
        &fig4,
        &MegaflowStrategy::wildcarding(&hyp2),
        all.map(|(a, b)| Key::from_values(&hyp2, &[a, b])),
    );
    println!("{}", fig5.render());
    println!(
        "-> {} entries, {} masks (paper: 3*4 + 1 = 13 masks)",
        fig5.entry_count(),
        fig5.mask_count()
    );

    use tse_bench::report::Metric;
    args.emit(
        env!("CARGO_BIN_NAME"),
        vec![
            Metric::deterministic("fig2/exact_entries", "entries", exact.entry_count() as f64),
            Metric::deterministic("fig3/wildcard_masks", "masks", wild.mask_count() as f64),
            Metric::deterministic("fig5/masks", "masks", fig5.mask_count() as f64),
            Metric::deterministic("fig5/entries", "entries", fig5.entry_count() as f64),
        ],
    );
}
