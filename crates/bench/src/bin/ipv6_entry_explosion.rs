//! E-IPv6: the §5.4 anomaly — for IPv6 ACLs OVS exact-matches the source address instead
//! of wildcarding it bit by bit, so the attack inflates the number of *entries* (memory,
//! revalidation CPU) while the mask count stays small.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tse_bench::render_table;
use tse_classifier::strategy::MegaflowStrategy;
use tse_packet::fields::FieldSchema;
use tse_switch::datapath::Datapath;

fn main() {
    let args = tse_bench::fig_args_static();
    let schema = FieldSchema::ovs_ipv6();
    let tp_dst = schema.field_index("tp_dst").unwrap();
    let ip6_src = schema.field_index("ip6_src").unwrap();
    // SipDp over IPv6: allow dst port 80, allow one source address, deny the rest.
    let table = tse_classifier::flowtable::FlowTable::whitelist_default_deny(
        &schema,
        &[
            (tp_dst, 80),
            (ip6_src, 0xfd00_0000_0000_0000_0000_0000_0000_0001),
        ],
    );

    let mut rows = Vec::new();
    let mut metrics = Vec::new();
    for (label, strategy, tag) in [
        (
            "bit-level wildcarding (IPv4-style)",
            MegaflowStrategy::wildcarding(&schema),
            "wildcarding",
        ),
        (
            "OVS IPv6 behaviour (exact-match addresses)",
            MegaflowStrategy::ovs_ipv6_anomaly(&schema),
            "ipv6_anomaly",
        ),
    ] {
        let mut dp = Datapath::builder(table.clone()).strategy(strategy).build();
        let mut rng = StdRng::seed_from_u64(99);
        let keys = tse_attack::general::random_trace_on_fields(
            &mut rng,
            &schema,
            &[ip6_src, tp_dst],
            &schema.zero_value(),
            20_000,
        );
        for (i, key) in keys.iter().enumerate() {
            dp.process_key(key, 64, i as f64 * 1e-5);
        }
        rows.push(vec![
            label.to_string(),
            format!("{}", dp.mask_count()),
            format!("{}", dp.entry_count()),
        ]);
        use tse_bench::report::Metric;
        metrics.push(Metric::deterministic(
            &format!("{tag}/masks"),
            "masks",
            dp.mask_count() as f64,
        ));
        metrics.push(Metric::deterministic(
            &format!("{tag}/entries"),
            "entries",
            dp.entry_count() as f64,
        ));
    }
    println!("== §5.4 IPv6 anomaly: 20 000 random SipDp-over-IPv6 attack packets ==\n");
    println!(
        "{}",
        render_table(
            &["megaflow generation strategy", "MFC masks", "MFC entries"],
            &rows
        )
    );
    println!("\npaper: 'a handful of masks but hundreds of thousands of MFC entries' -> memory/CPU exhaustion instead of lookup slowdown");
    args.emit(env!("CARGO_BIN_NAME"), metrics);
}
