//! E-IPv6: the §5.4 anomaly — for IPv6 ACLs OVS exact-matches the source address
//! instead of wildcarding it bit by bit, so the attack inflates the number of
//! *entries* (memory, revalidation CPU) while the mask count stays small.
//!
//! The experiment runs through the full wire-level pipeline: an IPv6 victim iperf
//! flow plus a [`WireGenerator`] attacker that crafts each random SipDp-over-IPv6
//! packet, serialises it to raw Ethernet bytes and recovers the key through the real
//! parser, feeding a sharded datapath behind RSS steering. Two megaflow-generation
//! strategies are compared on identical traffic:
//!
//! * `wildcarding` — bit-level wildcarding as for IPv4: the attack sparks *masks*
//!   (the classic lookup-slowdown explosion, collapsing the victim);
//! * `ipv6_anomaly` — the observed OVS behaviour: source addresses are installed
//!   exact-match, so masks stay flat while *entries* grow with every packet —
//!   memory/revalidation exhaustion instead of lookup slowdown.
//!
//! Run with `--duration <s>` (default 70), `--shards <n>` (default 4),
//! `--parallel <threads>` and `--json <path>` (CI smoke-runs it short and gates the
//! deterministic metrics through `BENCH_wire.json`).

use rand::rngs::StdRng;
use rand::SeedableRng;
use tse_attack::source::TrafficMix;
use tse_attack::wire::WireGenerator;
use tse_bench::render_table;
use tse_classifier::strategy::MegaflowStrategy;
use tse_packet::fields::FieldSchema;
use tse_simnet::offload::OffloadConfig;
use tse_simnet::runner::ExperimentRunner;
use tse_simnet::traffic::{VictimFlow, VictimSource};
use tse_switch::datapath::Datapath;
use tse_switch::pmd::{ShardedDatapath, Steering};

const ATTACK_START: f64 = 20.0;
const ATTACK_PPS: f64 = 400.0;
const ALLOWED_SRC: u128 = 0xfd00_0000_0000_0000_0000_0000_0000_0001;
const SERVICE_DST: u128 = 0xfd00_0000_0000_0000_0000_0000_0000_0063;

fn main() {
    let args = tse_bench::fig_args(70.0, 4);
    let (duration, n_shards) = (args.duration, args.shard_count());
    let schema = FieldSchema::ovs_ipv6();
    let tp_dst = schema.field_index("tp_dst").unwrap();
    let ip6_src = schema.field_index("ip6_src").unwrap();
    // SipDp over IPv6: allow dst port 80, allow one source address, deny the rest.
    let table = tse_classifier::flowtable::FlowTable::whitelist_default_deny(
        &schema,
        &[(tp_dst, 80), (ip6_src, ALLOWED_SRC)],
    );
    let victim = VictimFlow::iperf_tcp_v6("Victim", ALLOWED_SRC, SERVICE_DST, 10.0);
    let packets = ((duration - ATTACK_START).max(1.0) * ATTACK_PPS) as usize;
    let during_start = (ATTACK_START + 10.0).min(duration - 2.0);
    let during_end = duration - 1.0;

    println!(
        "== §5.4 IPv6 anomaly: {packets} random SipDp-over-IPv6 frames through the wire \
         parser, {n_shards} shards ({} executor), duration {duration} s ==\n",
        args.executor_label()
    );

    let mut rows = Vec::new();
    let mut metrics = Vec::new();
    let mut results = Vec::new();
    let wall = std::time::Instant::now();
    for (label, strategy, tag) in [
        (
            "bit-level wildcarding (IPv4-style)",
            MegaflowStrategy::wildcarding(&schema),
            "wildcarding",
        ),
        (
            "OVS IPv6 behaviour (exact-match addresses)",
            MegaflowStrategy::ovs_ipv6_anomaly(&schema),
            "ipv6_anomaly",
        ),
    ] {
        let sharded = ShardedDatapath::from_builder(
            Datapath::builder(table.clone())
                .strategy(strategy)
                .with_executor(args.executor()),
            n_shards,
            Steering::Rss,
        );
        let mut runner = ExperimentRunner::sharded(sharded, Vec::new(), OffloadConfig::gro_off());
        // Uniformly random attacker-controlled fields (the General TSE §6 shape),
        // serialised to raw frames and re-parsed on ingest.
        let keys = tse_attack::general::random_trace_on_fields(
            &mut StdRng::seed_from_u64(99),
            &schema,
            &[ip6_src, tp_dst],
            &schema.zero_value(),
            packets,
        );
        let mix = TrafficMix::new()
            .with(VictimSource::new(victim.clone(), &schema, 1.0))
            .with(WireGenerator::new(
                "Attacker",
                &schema,
                keys.into_iter(),
                StdRng::seed_from_u64(7),
                ATTACK_PPS,
                ATTACK_START,
            ));
        let tl = runner.run_mix(mix, duration);
        let peak_masks = tl.samples.iter().map(|s| s.mask_count).max().unwrap_or(0);
        let peak_entries = tl.samples.iter().map(|s| s.entry_count).max().unwrap_or(0);
        let before = tl.mean_total_between(5.0, ATTACK_START - 1.0);
        let during = tl.mean_total_between(during_start, during_end);
        let malformed: f64 = tl.samples.iter().map(|s| s.malformed_pps).sum();
        assert_eq!(malformed, 0.0, "well-formed frames must all classify");
        rows.push(vec![
            label.to_string(),
            format!("{peak_masks}"),
            format!("{peak_entries}"),
            format!("{before:6.2}"),
            format!("{during:6.2}"),
        ]);
        use tse_bench::report::Metric;
        metrics.push(Metric::deterministic(
            &format!("{tag}/peak_masks"),
            "masks",
            peak_masks as f64,
        ));
        metrics.push(Metric::deterministic(
            &format!("{tag}/peak_entries"),
            "entries",
            peak_entries as f64,
        ));
        metrics.push(
            Metric::deterministic(&format!("{tag}/victim_during_gbps"), "gbps", during)
                .higher_is_better(),
        );
        results.push((tag, peak_masks, peak_entries, before, during));
    }

    println!(
        "{}",
        render_table(
            &[
                "megaflow generation strategy",
                "peak masks",
                "peak entries",
                "victim before (Gbps)",
                "victim during (Gbps)",
            ],
            &rows
        )
    );
    println!(
        "\npaper: 'a handful of masks but hundreds of thousands of MFC entries' -> \
         memory/CPU exhaustion instead of lookup slowdown"
    );

    let (_, wc_masks, _, wc_before, wc_during) = results[0];
    let (_, an_masks, an_entries, ..) = results[1];
    if duration >= ATTACK_START + 12.0 {
        assert!(
            an_entries > an_masks * 50,
            "the anomaly inflates entries, not masks: {an_entries} entries vs {an_masks} masks"
        );
        assert!(
            wc_masks > an_masks * 4,
            "bit-level wildcarding sparks masks instead: {wc_masks} vs {an_masks}"
        );
        assert!(
            wc_during < wc_before * 0.5,
            "the wildcarding mask explosion must degrade the victim: {wc_before} -> {wc_during}"
        );
    } else {
        println!("(horizon too short for the acceptance assertions — run with --duration 70)");
    }

    use tse_bench::report::Metric;
    metrics.push(Metric::wall(
        "wall_seconds",
        "seconds_wall",
        wall.elapsed().as_secs_f64(),
    ));
    args.emit(env!("CARGO_BIN_NAME"), metrics);
}
