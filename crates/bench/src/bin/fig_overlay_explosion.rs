//! E-OVERLAY: the tuple-space explosion through cloud overlay encapsulations.
//!
//! A cloud gateway rarely sees the attacker's frame naked: tenant traffic arrives
//! VLAN-tagged or inside a VXLAN tunnel, and the switch classifies the *inner*
//! header the tunnel carries. This experiment replays the identical co-located SipDp
//! explosion three ways — plain Ethernet, 802.1Q-tagged, and VXLAN-encapsulated
//! (fixed VTEP addresses and VNI; the attacker controls only the inner frame) — as
//! raw bytes through the wire parser into a sharded datapath, with the explosion
//! pinned to the victim's shard.
//!
//! The headline claim is that the overlay is no defense: the parser recovers the
//! attacker-controlled inner key, so all three encapsulations produce **bit-for-bit
//! identical timelines** (asserted) — same mask explosion, same victim collapse —
//! and the guard+rekey stack restores the victim identically. A fourth run replays
//! undecodable garbage at the same rate: it sparks nothing (decode errors are
//! counted per kind on shard 0 and surface as the malformed-frame telemetry series).
//!
//! Run with `--duration <s>` (default 70), `--shards <n>` (default 4),
//! `--parallel <threads>` and `--json <path>` (CI smoke-runs it short and gates the
//! deterministic metrics through `BENCH_wire.json`).

use rand::rngs::StdRng;
use rand::SeedableRng;
use tse_attack::scenarios::Scenario;
use tse_attack::sharding::pin_to_shard;
use tse_attack::source::TrafficMix;
use tse_attack::wire::{WireGenerator, WireSource};
use tse_bench::render_table;
use tse_mitigation::guard::{GuardConfig, GuardMitigation};
use tse_mitigation::RssKeyRandomizer;
use tse_packet::fields::FieldSchema;
use tse_packet::wire::{Encap, WireTrace};
use tse_simnet::offload::OffloadConfig;
use tse_simnet::runner::{ExperimentRunner, Timeline};
use tse_simnet::traffic::{VictimFlow, VictimSource};
use tse_switch::datapath::Datapath;
use tse_switch::pmd::{ShardedDatapath, Steering};

const ATTACK_START: f64 = 20.0;
const ATTACK_PPS: f64 = 100.0;

/// The three wire envelopes under test.
const ENCAPS: [(&str, Encap); 3] = [
    ("plain", Encap::None),
    ("vlan", Encap::Vlan { tci: 100 }),
    (
        "vxlan",
        Encap::Vxlan {
            outer_src: 0x0a00_0001,
            outer_dst: 0x0a00_0002,
            vni: 42,
        },
    ),
];

fn attack_keys(schema: &FieldSchema) -> tse_attack::colocated::BitInversionKeys {
    let mut base = schema.zero_value();
    base.set(schema.field_index("ip_proto").unwrap(), 6);
    base.set(schema.field_index("ip_dst").unwrap(), 0x0a00_00c8);
    Scenario::SipDp.key_iter(schema, &base)
}

fn runner(schema: &FieldSchema, args: &tse_bench::FigArgs, guarded: bool) -> ExperimentRunner {
    let sharded = ShardedDatapath::from_builder(
        Datapath::builder(Scenario::SipDp.flow_table(schema)).with_executor(args.executor()),
        args.shard_count(),
        Steering::Rss,
    );
    let runner = ExperimentRunner::sharded(sharded, Vec::new(), OffloadConfig::gro_off());
    if guarded {
        runner
            .with_mitigation(GuardMitigation::new(GuardConfig::default()))
            .with_mitigation(RssKeyRandomizer::new(10.0, 0xC0FFEE))
    } else {
        runner
    }
}

fn run_encap(
    schema: &FieldSchema,
    args: &tse_bench::FigArgs,
    victim: &VictimFlow,
    encap: Encap,
    guarded: bool,
) -> Timeline {
    let n_shards = args.shard_count();
    let ip_dst = schema.field_index("ip_dst").unwrap();
    let packets = ((args.duration - ATTACK_START).max(1.0) * ATTACK_PPS) as usize;
    let mut r = runner(schema, args, guarded);
    let mix = TrafficMix::new()
        .with(VictimSource::new(victim.clone(), schema, 1.0))
        .with(
            WireGenerator::new(
                "Attacker",
                schema,
                pin_to_shard(schema, attack_keys(schema).cycle(), ip_dst, n_shards, 0),
                StdRng::seed_from_u64(99),
                ATTACK_PPS,
                ATTACK_START,
            )
            .with_encap(encap)
            .with_limit(packets),
        );
    r.run_mix(mix, args.duration)
}

fn victim_mean(tl: &Timeline, start: f64, stop: f64) -> f64 {
    tl.mean_total_between(start, stop)
}

fn main() {
    let args = tse_bench::fig_args(70.0, 4);
    let (duration, n_shards) = (args.duration, args.shard_count());
    let schema = FieldSchema::ovs_ipv4();
    let victim = VictimFlow::iperf_tcp("Victim", 0x0a00_0005, 0x0a00_0063, 10.0).steered_to_shard(
        &schema,
        Steering::Rss,
        n_shards,
        0,
    );
    let during_start = (ATTACK_START + 10.0).min(duration - 2.0);
    let during_end = duration - 1.0;
    println!(
        "== Overlay explosion: pinned SipDp @ {ATTACK_PPS} pps from t={ATTACK_START} s as raw \
         frames, {n_shards} shards ({} executor), duration {duration} s ==\n",
        args.executor_label()
    );

    let mut rows = Vec::new();
    let mut metrics = Vec::new();
    let mut plain_none: Option<Timeline> = None;
    let mut plain_guarded: Option<Timeline> = None;
    let wall = std::time::Instant::now();
    for guarded in [false, true] {
        let stack = if guarded { "guard+rekey" } else { "none" };
        for (name, encap) in ENCAPS {
            let tl = run_encap(&schema, &args, &victim, encap, guarded);
            let before = victim_mean(&tl, 5.0, ATTACK_START - 1.0);
            let during = victim_mean(&tl, during_start, during_end);
            let peak_masks = tl.samples.iter().map(|s| s.mask_count).max().unwrap_or(0);
            // The overlay changes the bytes on the wire, not the classified key: the
            // timeline must be bit-for-bit the plain-Ethernet one.
            let reference = if guarded { &plain_guarded } else { &plain_none };
            match reference {
                Some(plain) => assert_eq!(
                    plain.samples, tl.samples,
                    "{name}/{stack}: overlay must not change the timeline"
                ),
                None => {
                    if guarded {
                        plain_guarded = Some(tl.clone());
                    } else {
                        plain_none = Some(tl.clone());
                    }
                }
            }
            use tse_bench::report::Metric;
            metrics.push(
                Metric::deterministic(
                    &format!("{name}/{stack}/victim_during_gbps"),
                    "gbps",
                    during,
                )
                .higher_is_better(),
            );
            metrics.push(Metric::deterministic(
                &format!("{name}/{stack}/peak_masks"),
                "masks",
                peak_masks as f64,
            ));
            rows.push(vec![
                name.to_string(),
                stack.to_string(),
                format!("{before:6.2}"),
                format!("{during:6.2}"),
                format!("{peak_masks}"),
            ]);
        }
    }

    // The garbage run: same rate, but the frames are undecodable. Nothing explodes;
    // every frame is counted by kind on shard 0 and in the malformed series.
    let garbled_packets = ((duration - ATTACK_START).max(1.0) * ATTACK_PPS) as usize;
    let mut garbage = WireTrace::new();
    let junk = [0xDEu8; 9]; // shorter than any Ethernet header: DecodeError::Truncated
    for i in 0..garbled_packets {
        garbage.push(ATTACK_START + i as f64 / ATTACK_PPS, &junk);
    }
    let mut r = runner(&schema, &args, false);
    let mix = TrafficMix::new()
        .with(VictimSource::new(victim.clone(), &schema, 1.0))
        .with(WireSource::replay("Garbage", garbage, &schema));
    let tl = r.run_mix(mix, duration);
    let before = victim_mean(&tl, 5.0, ATTACK_START - 1.0);
    let during = victim_mean(&tl, during_start, during_end);
    let peak_masks = tl.samples.iter().map(|s| s.mask_count).max().unwrap_or(0);
    let malformed: f64 = tl.samples.iter().map(|s| s.malformed_pps).sum();
    assert_eq!(
        malformed.round() as usize,
        garbled_packets,
        "every garbage frame lands in the malformed series"
    );
    assert_eq!(
        r.datapath.shard(0).stats().truncated,
        garbled_packets as u64,
        "decode errors are counted by kind on shard 0"
    );
    rows.push(vec![
        "garbage".into(),
        "none".into(),
        format!("{before:6.2}"),
        format!("{during:6.2}"),
        format!("{peak_masks}"),
    ]);
    use tse_bench::report::Metric;
    metrics.push(Metric::deterministic(
        "garbage/none/peak_masks",
        "masks",
        peak_masks as f64,
    ));
    metrics.push(Metric::deterministic(
        "garbage/none/malformed_frames",
        "frames",
        malformed,
    ));

    println!(
        "{}",
        render_table(
            &[
                "wire format",
                "stack",
                "victim before (Gbps)",
                "victim during (Gbps)",
                "peak masks",
            ],
            &rows
        )
    );
    println!(
        "\nacceptance: plain == vlan == vxlan bit-for-bit (the tunnel carries the \
         attacker's inner key intact); garbage frames spark no masks"
    );

    let none = plain_none.as_ref().expect("unguarded run recorded");
    let guarded_tl = plain_guarded.as_ref().expect("guarded run recorded");
    let baseline = victim_mean(none, 5.0, ATTACK_START - 1.0);
    let collapsed = victim_mean(none, during_start, during_end);
    let restored = victim_mean(guarded_tl, during_start, during_end);
    let explosion_masks = none.samples.iter().map(|s| s.mask_count).max().unwrap_or(0);
    assert!(
        peak_masks * 8 < explosion_masks.max(8),
        "garbage must not explode the tuple space: {peak_masks} vs {explosion_masks}"
    );
    if duration >= ATTACK_START + 12.0 {
        assert!(
            collapsed < baseline * 0.25,
            "the pinned explosion must collapse the victim: {baseline} -> {collapsed}"
        );
    } else {
        println!("(horizon too short to assert the collapse — run with --duration 70)");
    }
    if during_end - during_start >= 20.0 {
        assert!(
            restored > baseline * 0.5,
            "guard+rekey must restore the victim: {restored} vs baseline {baseline}"
        );
    } else {
        println!("(horizon too short to assert the guard+rekey recovery — run with --duration 70)");
    }
    metrics.push(
        Metric::deterministic("plain/none/baseline_gbps", "gbps", baseline).higher_is_better(),
    );
    metrics.push(Metric::wall(
        "wall_seconds",
        "seconds_wall",
        wall.elapsed().as_secs_f64(),
    ));
    args.emit(env!("CARGO_BIN_NAME"), metrics);
}
