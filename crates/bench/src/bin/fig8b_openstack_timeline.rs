//! E-F8b: the OpenStack timeline of Fig. 8b — SipDp (the strongest pattern the OpenStack
//! security-group API can express), attacker active 0–60 s and again from 90 s, victim
//! (full-rate UDP iperf) joining at t = 30 s.
//!
//! The on/off attacker is expressed with the streaming API: two attack sources in one
//! `TrafficMix` (no hand-stitched trace), the late-joining victim is a third source.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tse_attack::colocated::scenario_trace;
use tse_attack::scenarios::Scenario;
use tse_attack::source::TrafficMix;
use tse_attack::trace::AttackTrace;
use tse_packet::fields::FieldSchema;
use tse_simnet::cloud::CloudPlatform;
use tse_simnet::offload::OffloadConfig;
use tse_simnet::runner::ExperimentRunner;
use tse_simnet::traffic::{VictimFlow, VictimSource};
use tse_switch::cost::CostModel;
use tse_switch::datapath::Datapath;

fn main() {
    let args = tse_bench::fig_args_duration(120.0);
    let duration = args.duration;
    let platform = CloudPlatform::OpenStack;
    let scenario = platform.clamp_scenario(Scenario::SipSpDp);
    let schema = FieldSchema::ovs_ipv4();
    let table = scenario.flow_table(&schema);

    // Victim: UDP iperf joining at t = 30 s, offered at the platform's line rate.
    let victim = VictimFlow::iperf_udp("Victim", 0x0a000005, 0x0a000063, platform.line_rate_gbps())
        .active_between(30.0, f64::INFINITY);
    // Attacker: 100 pps, on during 0–60 s and again 90–120 s — two sources, one mix.
    let keys = scenario_trace(&schema, scenario, &schema.zero_value());
    let mut rng = StdRng::seed_from_u64(21);
    let first = AttackTrace::from_keys_cyclic(&mut rng, &schema, &keys, 100.0, 0.0, 6000);
    let second = AttackTrace::from_keys_cyclic(&mut rng, &schema, &keys, 100.0, 90.0, 3000);

    let offload = OffloadConfig {
        name: "OpenStack UDP",
        bytes_per_invocation: 1538,
        line_rate_gbps: platform.line_rate_gbps(),
        cost: CostModel::ovs_kernel_default(),
    };
    let mut runner = ExperimentRunner::new(Datapath::new(table), Vec::new(), offload);
    let mix = TrafficMix::new()
        .with(VictimSource::new(victim, &schema, runner.sample_interval))
        .with(first.source("Attacker (1st wave)", &schema))
        .with(second.source("Attacker (2nd wave)", &schema));
    let wall = std::time::Instant::now();
    let timeline = runner.run_mix(mix, duration);
    let wall = wall.elapsed().as_secs_f64();
    println!(
        "== Fig. 8b: OpenStack (OVN), {} scenario, victim joins at t=30 s ==\n",
        scenario.name()
    );
    println!("{}", timeline.render_table());
    let attacker_on = timeline.mean_total_between(30.0, 60.0);
    let attacker_off = timeline.mean_total_between(70.0, 89.0);
    let attacker_back = timeline.mean_total_between(95.0, 119.0);
    println!(
        "victim mean: 30–60 s (attacker on) {attacker_on:.3} Gbps | 70–90 s (attacker off) {attacker_off:.3} Gbps | 95–120 s (attacker back) {attacker_back:.3} Gbps",
    );
    println!(
        "paper: >90 % reduction while both are active; recovery 10 s after the attacker stops."
    );
    println!("note: the paper's re-activation anomaly (long-lived flows barely affected when the");
    println!("attacker returns) was tied to an unstable OVS build and is not modelled; see EXPERIMENTS.md.");

    use tse_bench::report::Metric;
    let peak_masks = timeline
        .samples
        .iter()
        .map(|s| s.mask_count)
        .max()
        .unwrap_or(0);
    let peak_entries = timeline
        .samples
        .iter()
        .map(|s| s.entry_count)
        .max()
        .unwrap_or(0);
    args.emit(
        env!("CARGO_BIN_NAME"),
        vec![
            Metric::deterministic("victim_gbps_attacker_on", "gbps", attacker_on)
                .higher_is_better(),
            Metric::deterministic("victim_gbps_attacker_off", "gbps", attacker_off)
                .higher_is_better(),
            Metric::deterministic("victim_gbps_attacker_back", "gbps", attacker_back)
                .higher_is_better(),
            Metric::deterministic("peak_masks", "masks", peak_masks as f64),
            Metric::deterministic("peak_entries", "entries", peak_entries as f64),
            Metric::deterministic(
                "total_cost_seconds",
                "cost_seconds",
                runner.datapath.busy_seconds(),
            ),
            Metric::wall("wall_seconds", "seconds_wall", wall),
        ],
    );
}
