//! E-T1: Table 1 of the paper lists the physical testbeds (Xeon servers, Mellanox CX-4,
//! OpenStack Queens, Kubernetes 1.7). The reproduction runs no hardware; this binary
//! prints the simulator calibration that substitutes for it (DESIGN.md §4).

use tse_bench::render_table;
use tse_simnet::cloud::CloudPlatform;
use tse_simnet::offload::OffloadConfig;

fn main() {
    let args = tse_bench::fig_args_static();
    println!("== Table 1 substitute: simulator calibration ==\n");
    let rows: Vec<Vec<String>> = OffloadConfig::fig9a_set()
        .iter()
        .map(|c| {
            vec![
                c.name.to_string(),
                format!("{}", c.bytes_per_invocation),
                format!("{:.1}", c.line_rate_gbps),
                format!("{:.2}", c.cost.fixed * 1e6),
                format!("{:.1}", c.cost.per_mask * 1e9),
                format!("{:.0}", c.cost.upcall * 1e6),
                format!("{:.2}", c.baseline_gbps()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "offload config",
                "bytes/invocation",
                "line Gbps",
                "fixed us",
                "per-mask ns",
                "upcall us",
                "baseline Gbps"
            ],
            &rows
        )
    );

    println!("\n== Orchestrator models ==\n");
    let rows: Vec<Vec<String>> = [
        CloudPlatform::Synthetic,
        CloudPlatform::OpenStack,
        CloudPlatform::Kubernetes,
    ]
    .iter()
    .map(|p| {
        vec![
            p.name().to_string(),
            format!("{:.1}", p.line_rate_gbps()),
            p.max_scenario().name().to_string(),
            format!("{:?}", p.allowed_fields()),
        ]
    })
    .collect();
    println!(
        "{}",
        render_table(
            &["platform", "line Gbps", "max scenario", "tenant-ACL fields"],
            &rows
        )
    );

    use tse_bench::report::Metric;
    let mut metrics = Vec::new();
    for c in OffloadConfig::fig9a_set() {
        metrics.push(
            Metric::deterministic(
                &format!("{}/baseline_gbps", c.name),
                "gbps",
                c.baseline_gbps(),
            )
            .higher_is_better(),
        );
    }
    args.emit(env!("CARGO_BIN_NAME"), metrics);
}
