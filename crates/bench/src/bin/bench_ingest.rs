//! Fold criterion-stub measurements into a benchmark report file.
//!
//! ```text
//! TSE_BENCH_OUT=/tmp/crit.jsonl cargo bench -p tse-bench
//! bench_ingest /tmp/crit.jsonl BENCH_classifier.json [--group <prefix>]...
//! ```
//!
//! The vendored criterion stub appends one JSON line per finished benchmark to the
//! file `TSE_BENCH_OUT` names (`{"id": "group/bench/param", "median_s": ...,
//! "min_s": ..., "max_s": ...}`). This binary groups those lines by their criterion
//! group (the first `/`-separated component of the id) and upserts one
//! `criterion/<group>` report per group into the target report file, carrying the
//! median of each benchmark as a wall-clock metric (`seconds_wall`, lower is
//! better). With `--group` filters, only the named groups are ingested — that is how
//! the per-area split across `BENCH_classifier.json` / `BENCH_sharding.json` is
//! made from a single bench run.

use std::path::PathBuf;
use std::process::exit;

use tse_bench::report::{append_report, json, BenchReport, Json, Metric};

const USAGE: &str =
    "usage: bench_ingest <measurements.jsonl> <BENCH_area.json> [--group <prefix>]...";

fn main() {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut groups: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let group = if a == "--group" {
            Some(args.next().unwrap_or_else(|| {
                eprintln!("error: --group needs a value\n{USAGE}");
                exit(2);
            }))
        } else {
            a.strip_prefix("--group=").map(str::to_string)
        };
        if let Some(g) = group {
            groups.push(g);
        } else if a.starts_with("--") {
            eprintln!("error: unknown argument {a:?}\n{USAGE}");
            exit(2);
        } else {
            paths.push(PathBuf::from(a));
        }
    }
    let [in_path, out_path] = paths.as_slice() else {
        eprintln!("{USAGE}");
        exit(2);
    };

    let text = std::fs::read_to_string(in_path).unwrap_or_else(|e| {
        eprintln!("error: {}: {e}", in_path.display());
        exit(2);
    });

    // group name -> (bench id within the group -> median seconds); last line wins,
    // matching the stub's append-only log where re-runs append fresh lines.
    let mut by_group: Vec<(String, Vec<(String, f64)>)> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).unwrap_or_else(|e| {
            eprintln!("error: {} line {}: {e}", in_path.display(), lineno + 1);
            exit(2);
        });
        let (Some(id), Some(median)) = (
            v.get("id").and_then(Json::as_str),
            v.get("median_s").and_then(Json::as_num),
        ) else {
            eprintln!(
                "error: {} line {}: expected an object with \"id\" and \"median_s\"",
                in_path.display(),
                lineno + 1
            );
            exit(2);
        };
        let (group, bench) = id.split_once('/').unwrap_or((id, "default"));
        if !groups.is_empty() && !groups.iter().any(|g| g == group) {
            continue;
        }
        let slot = match by_group.iter_mut().find(|(g, _)| g == group) {
            Some((_, benches)) => benches,
            None => {
                by_group.push((group.to_string(), Vec::new()));
                &mut by_group.last_mut().expect("just pushed").1
            }
        };
        match slot.iter_mut().find(|(b, _)| b == bench) {
            Some((_, m)) => *m = median,
            None => slot.push((bench.to_string(), median)),
        }
    }

    if by_group.is_empty() {
        eprintln!(
            "error: no measurements matched in {} (filters: {:?})",
            in_path.display(),
            groups
        );
        exit(2);
    }

    for (group, benches) in by_group {
        let mut report = BenchReport::new(&format!("criterion/{group}"), "default");
        for (bench, median) in &benches {
            report.push(Metric::wall(bench, "seconds_wall", *median));
        }
        if let Err(e) = append_report(out_path, report) {
            eprintln!("error: {e}");
            exit(2);
        }
        println!(
            "[report] criterion/{group} ({} bench(es)) appended to {}",
            benches.len(),
            out_path.display()
        );
    }
}
