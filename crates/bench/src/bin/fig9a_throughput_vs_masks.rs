//! E-F9a / E-S54: victim throughput and 1 GB flow-completion time as a function of the
//! number of MFC masks, for the four offload configurations of Fig. 9a — plus the §5.4
//! summary percentages at 17 / 260 / 516 / 8200 masks.
//!
//! The mask counts are produced by actually replaying the Co-located traces of each use
//! case through the datapath; the throughput at each point comes from the calibrated
//! cost model (DESIGN.md §4).

use tse_attack::colocated::scenario_trace;
use tse_attack::scenarios::Scenario;
use tse_bench::render_table;
use tse_packet::fields::FieldSchema;
use tse_simnet::offload::OffloadConfig;
use tse_switch::datapath::Datapath;

fn measured_masks(scenario: Scenario) -> usize {
    let schema = FieldSchema::ovs_ipv4();
    if !scenario.has_attack_traffic() {
        return 1;
    }
    let table = scenario.flow_table(&schema);
    let mut dp = Datapath::new(table);
    for (i, key) in scenario_trace(&schema, scenario, &schema.zero_value())
        .iter()
        .enumerate()
    {
        dp.process_key(key, 64, i as f64 * 1e-5);
    }
    dp.mask_count()
}

fn main() {
    let args = tse_bench::fig_args_static();
    let configs = OffloadConfig::fig9a_set();

    println!("== Fig. 9a: victim throughput vs. number of MFC masks ==\n");
    let mut header = vec!["use case", "MFC masks"];
    for c in &configs {
        header.push(c.name);
    }
    header.push("FCT 1GB GRO OFF [s]");
    let mut rows = Vec::new();
    let mut per_case = Vec::new();
    for scenario in Scenario::ALL {
        let masks = measured_masks(scenario);
        per_case.push((scenario, masks));
        let mut row = vec![scenario.name().to_string(), format!("{masks}")];
        for c in &configs {
            row.push(format!("{:.3}", c.victim_gbps(masks)));
        }
        row.push(format!(
            "{:.1}",
            OffloadConfig::gro_off().flow_completion_time(masks, 1.0)
        ));
        rows.push(row);
    }
    println!("{}", render_table(&header, &rows));

    println!("\n== §5.4 summary: % of each configuration's own baseline ==\n");
    let mut rows = Vec::new();
    for (scenario, masks) in &per_case {
        if !scenario.has_attack_traffic() {
            continue;
        }
        let mut row = vec![scenario.name().to_string(), format!("{masks}")];
        for c in &configs {
            row.push(format!("{:.1} %", c.degradation_percent(*masks)));
        }
        rows.push(row);
    }
    let mut header = vec!["use case", "MFC masks"];
    for c in &configs {
        header.push(c.name);
    }
    println!("{}", render_table(&header, &rows));
    println!("\npaper anchors (GRO ON / FHO / GRO OFF): Dp 97/88/53 %, SpDp 95/43/10 %, SipDp 76/29/4.7 %, SipSpDp 3.9/2.1/0.2 %");

    use tse_bench::report::Metric;
    let gro_off = OffloadConfig::gro_off();
    let mut metrics = Vec::new();
    for (scenario, masks) in &per_case {
        metrics.push(Metric::deterministic(
            &format!("{}/masks", scenario.name()),
            "masks",
            *masks as f64,
        ));
        metrics.push(
            Metric::deterministic(
                &format!("{}/victim_gbps_gro_off", scenario.name()),
                "gbps",
                gro_off.victim_gbps(*masks),
            )
            .higher_is_better(),
        );
    }
    args.emit(env!("CARGO_BIN_NAME"), metrics);
}
